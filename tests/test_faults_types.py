"""FaultMap unit tests."""

import numpy as np
import pytest

from repro.faults.types import FaultMap, FaultType


class TestInjection:
    def test_inject_marks_cells(self):
        fm = FaultMap(8, 8)
        n = fm.inject(np.array([0, 9, 18]), FaultType.SA0)
        assert n == 3
        assert fm.count(FaultType.SA0) == 3
        assert fm.density == pytest.approx(3 / 64)

    def test_first_fault_wins(self):
        fm = FaultMap(4, 4)
        fm.inject(np.array([5]), FaultType.SA0)
        injected = fm.inject(np.array([5]), FaultType.SA1)
        assert injected == 0
        assert fm.codes.ravel()[5] == FaultType.SA0

    def test_inject_cells_by_coordinates(self):
        fm = FaultMap(4, 6)
        fm.inject_cells(np.array([1, 2]), np.array([3, 5]), FaultType.SA1)
        assert fm.codes[1, 3] == FaultType.SA1
        assert fm.codes[2, 5] == FaultType.SA1

    def test_out_of_range_rejected(self):
        fm = FaultMap(4, 4)
        with pytest.raises(IndexError):
            fm.inject(np.array([16]), FaultType.SA0)

    def test_cannot_inject_none(self):
        fm = FaultMap(4, 4)
        with pytest.raises(ValueError):
            fm.inject(np.array([0]), FaultType.NONE)

    def test_empty_injection_is_noop(self):
        fm = FaultMap(4, 4)
        assert fm.inject(np.array([], dtype=np.int64), FaultType.SA0) == 0


class TestQueries:
    def test_column_counts(self):
        fm = FaultMap(4, 4)
        fm.inject_cells(np.array([0, 1, 2]), np.array([1, 1, 3]), FaultType.SA1)
        counts = fm.column_counts(FaultType.SA1)
        np.testing.assert_array_equal(counts, [0, 2, 0, 1])

    def test_masks_partition(self):
        fm = FaultMap(6, 6)
        fm.inject(np.arange(4), FaultType.SA0)
        fm.inject(np.arange(10, 13), FaultType.SA1)
        assert not (fm.sa0_mask & fm.sa1_mask).any()
        assert (fm.sa0_mask | fm.sa1_mask).sum() == fm.count()

    def test_free_cells_complement(self):
        fm = FaultMap(4, 4)
        fm.inject(np.array([3, 7]), FaultType.SA0)
        free = fm.free_cells()
        assert len(free) == 14
        assert 3 not in free and 7 not in free


class TestManipulation:
    def test_copy_is_independent(self):
        fm = FaultMap(4, 4)
        clone = fm.copy()
        fm.inject(np.array([0]), FaultType.SA0)
        assert clone.count() == 0

    def test_clear(self):
        fm = FaultMap(4, 4)
        fm.inject(np.array([0, 1]), FaultType.SA1)
        fm.clear()
        assert fm.count() == 0

    def test_merge_unions_faults(self):
        a = FaultMap(4, 4)
        b = FaultMap(4, 4)
        a.inject(np.array([0]), FaultType.SA0)
        b.inject(np.array([0]), FaultType.SA1)  # conflict: a wins
        b.inject(np.array([5]), FaultType.SA1)
        a.merge(b)
        assert a.codes.ravel()[0] == FaultType.SA0
        assert a.codes.ravel()[5] == FaultType.SA1

    def test_merge_shape_mismatch(self):
        with pytest.raises(ValueError):
            FaultMap(4, 4).merge(FaultMap(4, 5))

    def test_equality(self):
        a, b = FaultMap(4, 4), FaultMap(4, 4)
        assert a == b
        a.inject(np.array([1]), FaultType.SA0)
        assert a != b
