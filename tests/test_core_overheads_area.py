"""Overhead accounting and area/power model tests."""

import numpy as np
import pytest

from repro.area.constants import DEFAULT_AREA
from repro.area.models import (
    bist_area_overhead,
    chip_area_mm2,
    ima_area_mm2,
    policy_area_overhead,
    tile_area_mm2,
)
from repro.area.power import (
    DEFAULT_ENERGY,
    estimate_epoch_flit_hops,
    remap_power_fraction,
)
from repro.core.controller import build_experiment
from repro.core.overheads import (
    bist_overhead_fraction,
    epoch_traffic_model,
    estimate_mvms_per_sample,
    monte_carlo_remap_overhead,
    remap_noc_overhead,
)
from repro.nn.tensor import Tensor
from repro.noc.topology import CMesh
from repro.noc.traffic import TrainingTrafficModel
from repro.utils.config import (
    ChipConfig,
    CrossbarConfig,
    ExperimentConfig,
    FaultConfig,
    TrainConfig,
)


@pytest.fixture(scope="module")
def ctx():
    cfg = ExperimentConfig(
        train=TrainConfig(
            model="vgg11", epochs=1, batch_size=16, n_train=32, n_test=32,
            width_mult=0.125,
        ),
        chip=ChipConfig(crossbar=CrossbarConfig(rows=32, cols=32)),
        faults=FaultConfig(pre_enabled=False, post_enabled=False),
        policy="none",
        seed=0,
    )
    context = build_experiment(cfg)
    # one forward pass so conv layers record their output sizes
    x = Tensor(context.dataset.x_train[:2])
    context.model.eval()
    context.model(x)
    return context


class TestTimingOverheads:
    def test_mvm_count_positive(self, ctx):
        mvms = estimate_mvms_per_sample(ctx.model, ctx.engine)
        assert mvms > 100  # many conv positions x blocks

    def test_bist_overhead_fraction_small(self, ctx):
        traffic = epoch_traffic_model(
            ctx.model, ctx.engine, samples=50_000, batches=390
        )
        frac = bist_overhead_fraction(traffic, ctx.chip.config)
        assert 0.0 < frac < 0.05  # sub-percent territory

    def test_remap_noc_overhead(self):
        cmesh = CMesh(4, 4, concentration=4)
        traffic = TrainingTrafficModel(
            samples=50_000, batches=390, mvms_per_sample=3000
        )
        frac, phases = remap_noc_overhead(
            [0, 5], {0: [8, 9], 5: [10]}, {0: 8, 5: 10}, cmesh, traffic
        )
        assert frac > 0
        assert phases["request"] > 0
        assert phases["transfer"] > 0

    def test_remap_overhead_zero_without_senders(self):
        cmesh = CMesh(2, 2, concentration=2)
        traffic = TrainingTrafficModel(samples=100, batches=5, mvms_per_sample=10)
        frac, phases = remap_noc_overhead([], {}, {}, cmesh, traffic)
        assert frac == 0.0
        assert sum(phases.values()) == 0

    def test_monte_carlo_mean_below_worst(self, rng):
        cmesh = CMesh(4, 4, concentration=4)
        traffic = TrainingTrafficModel(
            samples=50_000, batches=390, mvms_per_sample=3000
        )
        mean, worst = monte_carlo_remap_overhead(cmesh, traffic, rng, rounds=10)
        assert 0 < mean <= worst


class TestAreaModels:
    def test_roll_up_hierarchy(self):
        cfg = ChipConfig()
        assert ima_area_mm2(cfg) < tile_area_mm2(cfg) < chip_area_mm2(cfg)

    def test_bist_overhead_near_paper_value(self):
        """Paper: BIST adds ~0.61% of RCS area."""
        frac = bist_area_overhead(ChipConfig())
        assert 0.002 < frac < 0.02

    def test_policy_overhead_ordering(self):
        """Paper: BIST (0.61%) << AN code (6.3%) < Remap-T-10% (10%)."""
        cfg = ChipConfig()
        remap_d = policy_area_overhead("remap-d", cfg)
        an = policy_area_overhead("an-code", cfg)
        remap_t = policy_area_overhead("remap-t", cfg)
        assert remap_d < an < remap_t
        assert an == pytest.approx(0.063)
        assert remap_t == pytest.approx(0.10)

    def test_free_policies(self):
        cfg = ChipConfig()
        for name in ("none", "ideal", "static"):
            assert policy_area_overhead(name, cfg) == 0.0

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            policy_area_overhead("warp-drive", ChipConfig())


class TestPowerModel:
    def test_epoch_flit_hops(self, ctx):
        hops = estimate_epoch_flit_hops(ctx.model, samples=1000)
        assert hops > 1000

    def test_remap_power_fraction_below_paper_bound(self, ctx):
        epoch_hops = estimate_epoch_flit_hops(ctx.model, samples=50_000)
        # A generous remap phase: 100 transfers x 2048 flits x 3 hops.
        remap_hops = 100 * 2048 * 3
        frac = remap_power_fraction(remap_hops, epoch_hops)
        assert frac < 0.005  # paper: < 0.5% power overhead

    def test_validation(self):
        with pytest.raises(ValueError):
            remap_power_fraction(1.0, 0.0)
        with pytest.raises(ValueError):
            remap_power_fraction(-1.0, 10.0)
        with pytest.raises(ValueError):
            estimate_epoch_flit_hops(None, samples=0)  # type: ignore[arg-type]
