"""Spatial fault-distribution tests."""

import numpy as np
import pytest

from repro.faults.distribution import (
    clustered_cells,
    draw_pre_deployment_densities,
    uniform_cells,
)


class TestUniformCells:
    def test_distinct_indices(self, rng):
        cells = uniform_cells(rng, 16, 16, 50)
        assert len(np.unique(cells)) == 50

    def test_respects_forbidden(self, rng):
        forbidden = np.arange(200)
        cells = uniform_cells(rng, 16, 16, 56, forbidden=forbidden)
        assert not np.intersect1d(cells, forbidden).size
        assert len(cells) == 56

    def test_exhausted_pool_returns_remainder(self, rng):
        forbidden = np.arange(250)
        cells = uniform_cells(rng, 16, 16, 100, forbidden=forbidden)
        assert len(cells) == 6  # only 6 cells left

    def test_negative_count_rejected(self, rng):
        with pytest.raises(ValueError):
            uniform_cells(rng, 4, 4, -1)


class TestClusteredCells:
    def test_count_and_uniqueness(self, rng):
        cells = clustered_cells(rng, 32, 32, 60)
        assert len(cells) == 60
        assert len(np.unique(cells)) == 60

    def test_cluster_concentration(self, rng):
        """Two-thirds of cells should land in a small window: the spatial
        spread of the clustered fraction must be far below uniform."""
        n = 90
        cells = clustered_cells(rng, 64, 64, n, cluster_fraction=2 / 3)
        rows, cols = np.divmod(cells, 64)
        # Uniform placement has std ~ 64/sqrt(12) ~ 18.5 per axis; with a
        # cluster the median absolute deviation collapses.
        med_r, med_c = np.median(rows), np.median(cols)
        mad = np.median(np.abs(rows - med_r) + np.abs(cols - med_c))
        assert mad < 15

    def test_zero_cluster_fraction_is_uniform(self, rng):
        cells = clustered_cells(rng, 16, 16, 30, cluster_fraction=0.0)
        assert len(cells) == 30

    def test_respects_forbidden(self, rng):
        forbidden = np.arange(100)
        cells = clustered_cells(rng, 16, 16, 50, forbidden=forbidden)
        assert not np.intersect1d(cells, forbidden).size

    def test_invalid_fraction(self, rng):
        with pytest.raises(ValueError):
            clustered_cells(rng, 8, 8, 4, cluster_fraction=1.5)

    def test_zero_count(self, rng):
        assert clustered_cells(rng, 8, 8, 0).size == 0


class TestPreDeploymentDensities:
    def test_shape_and_ranges(self, rng):
        d = draw_pre_deployment_densities(rng, 1000)
        assert d.shape == (1000,)
        assert d.min() >= 0.0 and d.max() <= 0.010 + 1e-12

    def test_high_fraction_share(self, rng):
        d = draw_pre_deployment_densities(rng, 2000, high_fraction=0.2)
        high = (d >= 0.004).sum()
        # exactly 20% are drawn from the high range (a handful of low-range
        # draws can also exceed 0.004 only if ranges overlapped; they don't).
        assert high == pytest.approx(400, abs=1)

    def test_rejects_empty_chip(self, rng):
        with pytest.raises(ValueError):
            draw_pre_deployment_densities(rng, 0)
