"""Resilience tests: crashed/hung/raising workers, retry policy, env knobs.

Worker faults are injected through the runner's own chaos hook
(``REPRO_RUNNER_CHAOS`` = ``mode:key_substring:attempts``): ``crash``
SIGKILLs the worker process from inside — exactly the signature of an
OOM kill — ``hang`` sleeps past any deadline and ``raise`` throws inside
the worker.  The dispatcher must notice all three, retry the bounded
ones and never hang or abort the sweep.
"""

import numpy as np
import pytest

from repro.runner import (
    ExperimentCell,
    RetryPolicy,
    default_retries,
    default_timeout,
    run_experiments,
)
from repro.runner.runner import (
    CHAOS_ENV,
    RETRIES_ENV,
    TIMEOUT_ENV,
    _ensure_complete,
    _normalise,
)
from repro.telemetry import Telemetry
from repro.utils.config import (
    ChipConfig,
    CrossbarConfig,
    ExperimentConfig,
    FaultConfig,
    TrainConfig,
)

FAST_RETRY = RetryPolicy(max_attempts=3, backoff_seconds=0.05)


def _tiny(model: str = "vgg11", seed: int = 11, **train_kw) -> ExperimentConfig:
    train_kw.setdefault("epochs", 1)
    return ExperimentConfig(
        train=TrainConfig(
            model=model, batch_size=16, n_train=32, n_test=32,
            width_mult=0.125, **train_kw,
        ),
        chip=ChipConfig(crossbar=CrossbarConfig(rows=32, cols=32)),
        faults=FaultConfig(),
        policy="none",
        seed=seed,
    )


def _cells() -> list[ExperimentCell]:
    return [
        ExperimentCell("victim", _tiny(seed=11)),
        ExperimentCell("bystander", _tiny(seed=12, model="resnet12")),
    ]


class TestRetryPolicy:
    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(max_attempts=4, backoff_seconds=0.5,
                             backoff_factor=2.0)
        assert policy.delay_after(1) == 0.5
        assert policy.delay_after(2) == 1.0
        assert policy.delay_after(3) == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_seconds=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)


class TestEnvKnobs:
    def test_timeout_default_off(self, monkeypatch):
        monkeypatch.delenv(TIMEOUT_ENV, raising=False)
        assert default_timeout() is None

    def test_timeout_parsed(self, monkeypatch):
        monkeypatch.setenv(TIMEOUT_ENV, "90.5")
        assert default_timeout() == 90.5

    def test_timeout_zero_disables(self, monkeypatch):
        monkeypatch.setenv(TIMEOUT_ENV, "0")
        assert default_timeout() is None

    def test_timeout_garbage_rejected(self, monkeypatch):
        monkeypatch.setenv(TIMEOUT_ENV, "soon")
        with pytest.raises(ValueError):
            default_timeout()

    def test_retries_default(self, monkeypatch):
        monkeypatch.delenv(RETRIES_ENV, raising=False)
        assert default_retries() == 2

    def test_retries_parsed_and_clamped(self, monkeypatch):
        monkeypatch.setenv(RETRIES_ENV, "5")
        assert default_retries() == 5
        monkeypatch.setenv(RETRIES_ENV, "-3")
        assert default_retries() == 0

    def test_retries_garbage_rejected(self, monkeypatch):
        monkeypatch.setenv(RETRIES_ENV, "lots")
        with pytest.raises(ValueError):
            default_retries()


class TestWorkerCrash:
    """A worker killed with SIGKILL mid-cell neither hangs nor aborts."""

    def test_sigkill_is_retried_and_recovers(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "crash:victim:1")
        tel = Telemetry(echo=False)
        results = run_experiments(_cells(), workers=2, telemetry=tel,
                                  retry=FAST_RETRY)
        by_key = {r.key: r for r in results}
        assert all(r.ok for r in results), [r.error for r in results]
        assert by_key["victim"].attempts == 2
        assert by_key["bystander"].attempts == 1
        assert tel.counters["runner.cell_crashes"] == 1
        assert tel.counters["runner.cell_retries"] == 1
        retried = [e for e in tel.events if e["kind"] == "cell_retried"]
        assert retried and retried[0]["payload"]["reason"] == "crashed"

    def test_retried_result_is_bit_identical(self, monkeypatch):
        monkeypatch.delenv(CHAOS_ENV, raising=False)
        clean = run_experiments(_cells(), workers=2)
        monkeypatch.setenv(CHAOS_ENV, "crash:victim:1")
        chaotic = run_experiments(_cells(), workers=2, retry=FAST_RETRY)
        for c, x in zip(clean, chaotic):
            assert c.final_accuracy == x.final_accuracy
            assert (
                c.result.train_result.accuracy_curve()
                == x.result.train_result.accuracy_curve()
            )
            # Telemetry is deterministic modulo wall-clock fields.
            assert c.telemetry["counters"] == x.telemetry["counters"]
            assert (
                [e["kind"] for e in c.telemetry["events"]]
                == [e["kind"] for e in x.telemetry["events"]]
            )

    def test_persistent_crash_exhausts_retries(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "crash:victim:99")
        tel = Telemetry(echo=False)
        results = run_experiments(
            _cells(), workers=2, telemetry=tel,
            retry=RetryPolicy(max_attempts=2, backoff_seconds=0.05),
        )
        by_key = {r.key: r for r in results}
        victim = by_key["victim"]
        assert not victim.ok
        assert victim.attempts == 2
        assert "crashed" in victim.error and "retries exhausted" in victim.error
        assert np.isnan(victim.final_accuracy)
        assert by_key["bystander"].ok
        assert tel.counters["runner.cells_failed"] == 1


class TestWorkerTimeout:
    def test_hung_worker_is_killed_and_retried(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "hang:victim:1")
        tel = Telemetry(echo=False)
        results = run_experiments(_cells(), workers=2, telemetry=tel,
                                  timeout=2.0, retry=FAST_RETRY)
        by_key = {r.key: r for r in results}
        assert all(r.ok for r in results), [r.error for r in results]
        assert by_key["victim"].attempts == 2
        assert tel.counters["runner.cell_timeouts"] == 1
        kinds = [e["kind"] for e in tel.events]
        assert "cell_timeout" in kinds and "cell_retried" in kinds

    def test_persistent_hang_exhausts_retries(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "hang:victim:99")
        results = run_experiments(
            _cells(), workers=2, timeout=1.5,
            retry=RetryPolicy(max_attempts=2, backoff_seconds=0.05),
        )
        victim = {r.key: r for r in results}["victim"]
        assert not victim.ok
        assert "timed out" in victim.error


class TestWorkerRaise:
    def test_raise_fails_immediately_without_retry(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "raise:victim:99")
        tel = Telemetry(echo=False)
        results = run_experiments(_cells(), workers=2, telemetry=tel,
                                  retry=FAST_RETRY)
        by_key = {r.key: r for r in results}
        victim = by_key["victim"]
        assert not victim.ok
        assert victim.attempts == 1
        assert "chaos: injected failure" in victim.error
        assert by_key["bystander"].ok
        assert "runner.cell_retries" not in tel.counters


class TestCompletenessGuard:
    """The bare ``assert`` is gone: a hole in the results raises a
    RuntimeError naming the unfinished cells even under ``python -O``."""

    def test_missing_cells_named(self):
        cells = _normalise([("a", _tiny()), ("b", _tiny(seed=12))])
        with pytest.raises(RuntimeError, match=r"1/2 cells.*'b'"):
            _ensure_complete([object(), None], cells)

    def test_long_tail_is_elided(self):
        cells = _normalise([(f"cell{i}", _tiny()) for i in range(12)])
        with pytest.raises(RuntimeError, match=r"\(\+4 more\)"):
            _ensure_complete([None] * 12, cells)

    def test_complete_results_pass(self):
        cells = _normalise([("a", _tiny())])
        _ensure_complete([object()], cells)


class TestShmExportCleanup:
    """A partway failure in the shared-memory export must not leak the
    segments created before the failure (regression: they stayed mapped
    in /dev/shm forever)."""

    def test_partial_failure_unlinks_created_segments(self, monkeypatch):
        from multiprocessing import shared_memory

        from repro.runner.runner import _export_datasets_shm

        created: list[str] = []
        real = shared_memory.SharedMemory

        def flaky(*args, **kwargs):
            if len(created) == 2:
                raise OSError("no space left on /dev/shm")
            shm = real(*args, **kwargs)
            created.append(shm.name)
            return shm

        monkeypatch.setattr(shared_memory, "SharedMemory", flaky)
        cells = _normalise([_tiny(seed=31)])
        with pytest.raises(OSError, match="no space left"):
            _export_datasets_shm(cells)
        assert len(created) == 2
        monkeypatch.undo()
        for name in created:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_success_leaves_segments_attachable(self):
        from multiprocessing import shared_memory

        from repro.runner.runner import (
            _export_datasets_shm,
            _release_segments,
        )

        cells = _normalise([_tiny(seed=32)])
        specs, segments = _export_datasets_shm(cells)
        try:
            name = specs[0]["arrays"]["x_train"]["shm"]
            probe = shared_memory.SharedMemory(name=name)
            probe.close()
        finally:
            _release_segments(segments)
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)
