"""AN-code codec and behavioural-bridge tests."""

import numpy as np
import pytest

from repro.ecc.an_code import ANCode, CorrectionStats, column_correctable_mask
from repro.faults.types import FaultMap, FaultType


class TestCodec:
    def test_encode_multiplies(self):
        code = ANCode(a=251)
        np.testing.assert_array_equal(
            code.encode(np.array([0, 1, -3])), [0, 251, -753]
        )

    def test_clean_decode_roundtrip(self, rng):
        code = ANCode(a=251)
        x = rng.integers(-1000, 1000, 64)
        np.testing.assert_array_equal(code.decode(code.encode(x)), x)

    def test_corrects_small_errors(self, rng):
        code = ANCode(a=251)
        x = rng.integers(-100, 100, 128)
        e = rng.integers(-code.t, code.t + 1, 128)
        np.testing.assert_array_equal(code.decode(code.encode(x) + e), x)

    def test_large_errors_miscorrect(self):
        code = ANCode(a=251, t=50)
        x = np.array([10])
        received = code.encode(x) + 251  # aliases to the next codeword
        assert code.decode(received)[0] == 11

    def test_stats_tally(self, rng):
        code = ANCode(a=251, t=50)
        stats = CorrectionStats()
        x = np.zeros(3, dtype=np.int64)
        received = code.encode(x) + np.array([0, 13, 120])
        code.decode(received, stats)
        assert stats.clean == 1
        assert stats.corrected == 1
        assert stats.miscorrected == 1
        assert stats.total == 3

    def test_syndrome_symmetric(self):
        code = ANCode(a=7)
        syn = code.syndrome(np.array([7, 8, 6, 13]))
        np.testing.assert_array_equal(syn, [0, 1, -1, -1])

    def test_is_correctable_radius(self):
        code = ANCode(a=251, t=40)
        assert code.is_correctable(np.array([40]))[0]
        assert not code.is_correctable(np.array([41]))[0]

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ANCode(a=2)
        with pytest.raises(ValueError):
            ANCode(a=11, t=6)  # 2t >= A

    def test_encode_requires_integers(self):
        with pytest.raises(TypeError):
            ANCode().encode(np.array([0.5]))


class TestColumnCorrectableMask:
    def test_sparse_columns_corrected(self):
        fm = FaultMap(8, 8)
        fm.inject_cells(np.array([0]), np.array([0]), FaultType.SA0)  # col 0: 1 fault
        fm.inject_cells(np.array([0, 1]), np.array([2, 2]), FaultType.SA1)  # col 2: 2
        mask = column_correctable_mask(fm, per_column_capacity=1)
        assert mask[0, 0]  # single fault in column -> cancelled
        assert not mask[0, 2] and not mask[1, 2]  # saturated column keeps faults

    def test_capacity_zero_corrects_nothing(self):
        fm = FaultMap(4, 4)
        fm.inject(np.array([0]), FaultType.SA0)
        assert not column_correctable_mask(fm, 0).any()

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            column_correctable_mask(FaultMap(4, 4), -1)

    def test_clustered_faults_defeat_the_code(self, rng):
        """The paper's argument: clustering concentrates faults in columns,
        pushing them beyond the correction capability."""
        from repro.faults.distribution import clustered_cells

        fm_clustered = FaultMap(32, 32)
        cells = clustered_cells(rng, 32, 32, 40, cluster_fraction=1.0)
        fm_clustered.inject(cells, FaultType.SA0)

        fm_uniform = FaultMap(32, 32)
        cells = clustered_cells(rng, 32, 32, 40, cluster_fraction=0.0)
        fm_uniform.inject(cells, FaultType.SA0)

        corr_clustered = column_correctable_mask(fm_clustered, 1).sum()
        corr_uniform = column_correctable_mask(fm_uniform, 1).sum()
        assert corr_clustered < corr_uniform
