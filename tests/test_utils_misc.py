"""Tests for table, series and sparkline rendering helpers."""

import pytest

from repro.utils.charts import render_sparkline
from repro.utils.tabulate import render_series, render_table


class TestRenderTable:
    def test_alignment_and_headers(self):
        out = render_table(["model", "acc"], [["vgg11", 0.913]], ndigits=3)
        lines = out.splitlines()
        assert "model" in lines[0] and "acc" in lines[0]
        assert "0.913" in lines[2]

    def test_title(self):
        out = render_table(["a"], [[1]], title="Fig. 6")
        assert out.splitlines()[0] == "Fig. 6"

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        out = render_table(["a", "b"], [])
        assert "a" in out


class TestRenderSeries:
    def test_pairs_rendered(self):
        out = render_series("acc", [1, 2], [0.5, 0.75], "epoch", "acc")
        assert "1 -> 0.50" in out
        assert "2 -> 0.75" in out

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            render_series("s", [1], [1, 2])


class TestRenderSparkline:
    def test_monotone_ramp(self):
        assert render_sparkline([0.0, 0.5, 1.0]) == "▁▅█"

    def test_constant_series_is_flat(self):
        out = render_sparkline([2.0, 2.0, 2.0])
        assert len(out) == 3
        assert len(set(out)) == 1

    def test_empty(self):
        assert render_sparkline([]) == ""

    def test_explicit_scale_clamps(self):
        out = render_sparkline([5.0, -1.0], vmax=1.0)
        assert out[0] == "█"
        assert out[1] == "▁"
