"""Tests for logging and table rendering helpers."""

import json

import pytest

from repro.utils.logging import RunLogger
from repro.utils.tabulate import render_series, render_table


class TestRunLogger:
    def test_records_events_in_order(self):
        log = RunLogger(echo=False)
        log.event("epoch", epoch=0, acc=0.5)
        log.event("remap", count=3)
        assert [e["kind"] for e in log.events] == ["epoch", "remap"]

    def test_filter_by_kind(self):
        log = RunLogger(echo=False)
        log.event("a", x=1)
        log.event("b", x=2)
        log.event("a", x=3)
        assert [e["x"] for e in log.filter("a")] == [1, 3]

    def test_dump_jsonl(self, tmp_path):
        log = RunLogger(echo=False)
        log.event("epoch", epoch=1)
        path = tmp_path / "run.jsonl"
        log.dump_jsonl(str(path))
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["kind"] == "epoch"


class TestRenderTable:
    def test_alignment_and_headers(self):
        out = render_table(["model", "acc"], [["vgg11", 0.913]], ndigits=3)
        lines = out.splitlines()
        assert "model" in lines[0] and "acc" in lines[0]
        assert "0.913" in lines[2]

    def test_title(self):
        out = render_table(["a"], [[1]], title="Fig. 6")
        assert out.splitlines()[0] == "Fig. 6"

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        out = render_table(["a", "b"], [])
        assert "a" in out


class TestRenderSeries:
    def test_pairs_rendered(self):
        out = render_series("acc", [1, 2], [0.5, 0.75], "epoch", "acc")
        assert "1 -> 0.50" in out
        assert "2 -> 0.75" in out

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            render_series("s", [1], [1, 2])
