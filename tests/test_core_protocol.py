"""Remap protocol tests: sender/receiver selection, execution, hysteresis."""

import numpy as np
import pytest

from repro.core.remap_protocol import IdleSlot, RemapProtocol
from repro.core.tasks import Task, enumerate_tasks, phase_tolerance_rank
from repro.reram.chip import Chip


@pytest.fixture
def chip(chip_config) -> Chip:
    return Chip(chip_config)


def _setup(chip) -> tuple[list[Task], np.ndarray]:
    bwd = chip.allocate_layer_copy("l:bwd", "backward", (16, 16))
    fwd = chip.allocate_layer_copy("l:fwd", "forward", (16, 16))
    tasks = enumerate_tasks([bwd, fwd])
    densities = np.zeros(chip.num_pairs)
    return tasks, densities


class TestTaskAbstraction:
    def test_backward_ranks_less_tolerant(self):
        assert phase_tolerance_rank("backward") < phase_tolerance_rank("forward")

    def test_unknown_phase_rejected(self):
        with pytest.raises(ValueError):
            phase_tolerance_rank("diagonal")

    def test_enumerate_covers_all_blocks(self, chip):
        m = chip.allocate_layer_copy("x", "forward", (40, 16))
        tasks = enumerate_tasks([m])
        assert len(tasks) == m.num_blocks
        assert {t.pair_id for t in tasks} == set(map(int, m.pair_ids.ravel()))


class TestPlanning:
    def test_no_senders_below_threshold(self, chip):
        tasks, densities = _setup(chip)
        plan = RemapProtocol(chip, threshold=0.01).plan(tasks, densities)
        assert plan.num_remaps == 0

    def test_backward_task_over_threshold_remaps(self, chip):
        tasks, densities = _setup(chip)
        bwd_task = next(t for t in tasks if t.phase == "backward")
        densities[bwd_task.pair_id] = 0.05
        plan = RemapProtocol(chip, threshold=0.01).plan(tasks, densities)
        assert plan.num_remaps == 1
        assert plan.decisions[0].sender is bwd_task

    def test_forward_tasks_never_send_with_phase_priority(self, chip):
        tasks, densities = _setup(chip)
        fwd_task = next(t for t in tasks if t.phase == "forward")
        densities[fwd_task.pair_id] = 0.05
        plan = RemapProtocol(chip, threshold=0.01).plan(tasks, densities)
        assert plan.num_remaps == 0

    def test_receiver_must_have_lower_density(self, chip):
        tasks, densities = _setup(chip)
        densities[:] = 0.05  # everything equally bad -> no receiver
        plan = RemapProtocol(chip, threshold=0.01).plan(tasks, densities)
        assert plan.num_remaps == 0

    def test_idle_pairs_preferred_over_task_receivers(self, chip):
        tasks, densities = _setup(chip)
        bwd_task = next(t for t in tasks if t.phase == "backward")
        densities[bwd_task.pair_id] = 0.05
        idle = chip.idle_pair_ids()
        plan = RemapProtocol(chip, threshold=0.01).plan(
            tasks, densities, idle_pairs=idle
        )
        assert isinstance(plan.decisions[0].receiver, IdleSlot)

    def test_settle_hysteresis_prefers_below_threshold(self, chip):
        tasks, densities = _setup(chip)
        sender = next(t for t in tasks if t.phase == "backward")
        densities[sender.pair_id] = 0.05
        # a barely-better task receiver and a clean idle pair
        idle = chip.idle_pair_ids()[:1]
        fwd_task = next(t for t in tasks if t.phase == "forward")
        densities[fwd_task.pair_id] = 0.049
        plan = RemapProtocol(chip, threshold=0.01).plan(
            tasks, densities, idle_pairs=idle
        )
        assert plan.decisions[0].receiver_density <= 0.01

    def test_each_receiver_used_once(self, chip):
        bwd = chip.allocate_layer_copy("b", "backward", (40, 16))
        fwd = chip.allocate_layer_copy("f", "forward", (16, 16))
        tasks = enumerate_tasks([bwd, fwd])
        densities = np.zeros(chip.num_pairs)
        for t in tasks:
            if t.phase == "backward":
                densities[t.pair_id] = 0.05
        plan = RemapProtocol(chip, threshold=0.01).plan(tasks, densities)
        receivers = [id(d.receiver) for d in plan.decisions]
        assert len(receivers) == len(set(receivers))

    def test_worst_sender_served_first(self, chip):
        tasks, densities = _setup(chip)
        bwd_tasks = [t for t in tasks if t.phase == "backward"]
        densities[bwd_tasks[0].pair_id] = 0.02
        if len(bwd_tasks) > 1:
            densities[bwd_tasks[1].pair_id] = 0.08
        plan = RemapProtocol(chip, threshold=0.01).plan(tasks, densities)
        assert plan.decisions[0].sender_density == max(
            d.sender_density for d in plan.decisions
        )

    def test_invalid_parameters(self, chip):
        with pytest.raises(ValueError):
            RemapProtocol(chip, threshold=2.0)
        with pytest.raises(ValueError):
            RemapProtocol(chip, receiver_rule="teleport")


class TestExecution:
    def test_swap_execution_moves_both_tasks(self, chip):
        tasks, densities = _setup(chip)
        sender = next(t for t in tasks if t.phase == "backward")
        densities[sender.pair_id] = 0.05
        protocol = RemapProtocol(chip, threshold=0.01)
        plan = protocol.plan(tasks, densities)  # no idle pairs offered
        old_sender_pair = sender.pair_id
        receiver = plan.decisions[0].receiver
        old_receiver_pair = receiver.pair_id
        protocol.execute(plan)
        assert sender.pair_id == old_receiver_pair
        assert receiver.pair_id == old_sender_pair

    def test_idle_execution_moves_one_way(self, chip):
        tasks, densities = _setup(chip)
        sender = next(t for t in tasks if t.phase == "backward")
        densities[sender.pair_id] = 0.05
        old_pair = sender.pair_id
        protocol = RemapProtocol(chip, threshold=0.01)
        plan = protocol.plan(tasks, densities, idle_pairs=chip.idle_pair_ids())
        protocol.execute(plan)
        assert sender.pair_id != old_pair
        assert old_pair in chip.idle_pair_ids()

    def test_plan_carries_noc_metadata(self, chip):
        tasks, densities = _setup(chip)
        sender = next(t for t in tasks if t.phase == "backward")
        densities[sender.pair_id] = 0.05
        plan = RemapProtocol(chip, threshold=0.01).plan(
            tasks, densities, idle_pairs=chip.idle_pair_ids()
        )
        assert plan.sender_tiles
        s_tile = plan.sender_tiles[0]
        assert s_tile in plan.matches
        assert plan.total_hops() >= 0
