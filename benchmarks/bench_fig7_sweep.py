"""Fig. 7 — Remap-D under varying post-deployment fault pressure.

The paper sweeps the per-epoch post-deployment regime: m% new faulty
cells appearing on n% of the crossbars after every epoch, with m in
{0.1, 0.5, 1}% and n in {0.1, 1, 2}%, for VGG-19 and ResNet-12.  Remap-D
degrades only mildly as (m, n) grow; even the worst corner (m=1%, n=2%)
loses only a few percent after full training.
"""

from repro.runner import ExperimentCell
from repro.utils.config import FaultConfig
from repro.utils.tabulate import render_table

from _common import SCALE, experiment, run_cells, save_results

import os

SWEEP_MODELS = ["vgg19", "resnet12"] if SCALE != "quick" else ["resnet12"]
_OVERRIDE = os.environ.get("REPRO_BENCH_MODELS")
if _OVERRIDE:
    SWEEP_MODELS = [m.strip() for m in _OVERRIDE.split(",") if m.strip()]
M_VALUES = [0.001, 0.005, 0.01]
N_VALUES = [0.001, 0.01, 0.02]


def _cells() -> list[ExperimentCell]:
    cells = []
    for model in SWEEP_MODELS:
        cells.append(ExperimentCell(
            (model, "ideal"),
            experiment(model, "ideal",
                       FaultConfig(pre_enabled=False, post_enabled=False)),
        ))
        for m in M_VALUES:
            for n in N_VALUES:
                cells.append(ExperimentCell(
                    (model, m, n),
                    experiment(model, "remap-d",
                               FaultConfig(post_m=m, post_n=n)),
                ))
    return cells


def run_fig7() -> dict:
    by_key = run_cells(_cells(), name="fig7")
    results: dict[str, dict] = {}
    for model in SWEEP_MODELS:
        ideal = by_key[(model, "ideal")].final_accuracy
        grid: dict[str, float] = {}
        rows = []
        for m in M_VALUES:
            row = [f"m={100 * m:.1f}%"]
            for n in N_VALUES:
                acc = by_key[(model, m, n)].final_accuracy
                grid[f"m={m},n={n}"] = acc
                row.append(acc)
            rows.append(row)
        results[model] = {"ideal": ideal, "grid": grid}
        print()
        print(render_table(
            ["", *(f"n={100 * n:.1f}%" for n in N_VALUES)],
            rows,
            title=f"Fig. 7 ({model}): Remap-D accuracy vs post-fault regime "
                  f"(fault-free reference {ideal:.3f})",
            ndigits=3,
        ))
    save_results("fig7", results)
    return results


def test_fig7_sweep(benchmark):
    results = benchmark.pedantic(run_fig7, rounds=1, iterations=1)
    for model, payload in results.items():
        grid = payload["grid"]
        ideal = payload["ideal"]
        mildest = grid[f"m={M_VALUES[0]},n={N_VALUES[0]}"]
        # Paper's claim: the accuracy drop under the mildest regime is
        # negligible, and even the worst corner stays usable (not chance).
        assert ideal - mildest < 0.25
        assert min(grid.values()) > 0.2
