"""Fig. 5 — fault tolerance of the forward vs. backward training phase.

The paper injects a 2% fault density into the crossbars implementing the
forward-phase tasks or the backward-phase tasks of each CNN, trains from
scratch on (synthetic) CIFAR-10, and reports the trained accuracy: faults
in the backward phase cost up to 45% accuracy while forward-phase faults
have a small impact.  This observation is what justifies Remap-D's
phase-priority rule.
"""

from repro.runner import ExperimentCell
from repro.utils.config import FaultConfig
from repro.utils.tabulate import render_table

from _common import MODELS, experiment, run_cells, save_results

DENSITY = 0.02
VARIANTS = ("ideal", "forward", "backward")


def _cell(model: str, variant: str) -> ExperimentCell:
    if variant == "ideal":
        faults = FaultConfig(pre_enabled=False, post_enabled=False)
        policy = "ideal"
    else:
        faults = FaultConfig(
            pre_enabled=False,
            post_enabled=False,
            phase_target=variant,
            phase_density=DENSITY,
        )
        policy = "none"
    return ExperimentCell((model, variant), experiment(model, policy, faults))


def run_fig5() -> dict:
    by_key = run_cells(
        (_cell(model, variant) for model in MODELS for variant in VARIANTS),
        name="fig5",
    )
    rows = []
    results: dict[str, dict[str, float]] = {}
    for model in MODELS:
        accs = {v: by_key[(model, v)].final_accuracy for v in VARIANTS}
        results[model] = accs
        rows.append([
            model, accs["ideal"], accs["forward"], accs["backward"],
            accs["ideal"] - accs["forward"], accs["ideal"] - accs["backward"],
        ])
    print()
    print(render_table(
        ["model", "fault-free", "fwd 2%", "bwd 2%", "fwd loss", "bwd loss"],
        rows,
        title="Fig. 5: accuracy with 2% fault density in one phase "
              "(paper: backward loses up to 45%, forward ~unchanged)",
        ndigits=3,
    ))
    save_results("fig5", results)
    return results


def test_fig5_phase_tolerance(benchmark):
    results = benchmark.pedantic(run_fig5, rounds=1, iterations=1)
    fwd_losses = [
        r["ideal"] - r["forward"] for r in results.values()
    ]
    bwd_losses = [
        r["ideal"] - r["backward"] for r in results.values()
    ]
    mean = lambda xs: sum(xs) / len(xs)  # noqa: E731
    # The paper's headline: the backward phase is consistently less
    # fault-tolerant than the forward phase (on average across CNNs).
    assert mean(bwd_losses) > mean(fwd_losses)
    assert mean(bwd_losses) > 0.05  # backward faults must visibly hurt
