"""Fleet scale-out benchmark: cross-chip eviction vs a stranded chip.

Subjects a training run to a spare-exhausting chaos fault wave (one
chip's crossbars saturated with extra stuck cells after epoch 0) under
two hardware budgets:

* ``chips=1`` — the classic single chip.  Every spare pair is as dirty
  as the senders, so Remap-D has nowhere left to move critical tasks:
  the chip is *stranded* with the wave's faults under live tasks;
* ``chips=2`` — the same model pipeline-partitioned over a two-chip
  fleet.  The wave hits chip 0 only; the extended remap protocol evicts
  the critical tasks over the interconnect to chip 1's clean pairs,
  paying the per-migration transfer cost the interconnect accounts.

Writes ``benchmarks/results/fleet.json`` with both runs' accuracy
curves, remap/eviction counts and the interconnect bill.  Acceptance
(asserted by ``test_fleet``): the fleet run performs >= 1 cross-chip
eviction with a visible non-zero transfer cost, the single-chip run
performs none, and the fleet ends with fewer faulty cells under live
tasks than the stranded chip.
"""

from __future__ import annotations

from repro.core.controller import run_experiment
from repro.telemetry import Telemetry
from repro.telemetry.health import chip_health
from repro.utils.config import (
    ChipConfig,
    CrossbarConfig,
    ExperimentConfig,
    FaultConfig,
    TrainConfig,
)

from _common import DTYPE, SCALE, save_results
from repro.utils.tabulate import render_table

WAVE_DENSITY = 0.2


def _config(chips: int) -> ExperimentConfig:
    epochs = 3 if SCALE == "quick" else 4
    return ExperimentConfig(
        train=TrainConfig(
            model="vgg11", epochs=epochs, batch_size=16, n_train=96,
            n_test=64, width_mult=0.125, dtype=DTYPE,
        ),
        chip=ChipConfig(crossbar=CrossbarConfig(rows=32, cols=32)),
        faults=FaultConfig(
            wave_epoch=0, wave_chip=0, wave_density=WAVE_DENSITY
        ),
        policy="remap-d",
        remap_threshold=0.001,
        chips=chips,
        seed=11,
    )


def _run(chips: int) -> dict:
    tel = Telemetry(echo=False)
    result = run_experiment(_config(chips), telemetry=tel)
    counters = tel.summary()["counters"]
    # Final ground-truth health: the faulty cells still under live tasks
    # are the wave damage remapping could NOT take out of service.
    ctx_free = {
        "chips": chips,
        "final_accuracy": result.final_accuracy,
        "accuracy_curve": [h["test_acc"] for h in result.train_result.history],
        "num_remaps": result.num_remaps,
        "num_evictions": result.num_evictions,
        "stranded_senders": int(counters.get("fleet.stranded_senders", 0)),
        "interchip_transfers": int(counters.get("fleet.interchip_transfers", 0)),
        "interchip_flits": int(counters.get("fleet.interchip_flits", 0)),
        "interchip_cycles": int(counters.get("fleet.interchip_cycles", 0)),
        "wall_seconds": round(result.wall_seconds, 2),
    }
    samples = tel.filter("health_sample")
    if samples:
        final = samples[-1]["payload"]
        ctx_free["active_faulty"] = int(final["active_faulty"])
        ctx_free["quarantined"] = int(final["quarantined"])
        ctx_free["active_fraction"] = (
            final["active_faulty"] / final["faulty"] if final["faulty"] else 0.0
        )
    return ctx_free


def run_fleet() -> dict:
    print(f"fleet bench: spare-exhausting wave (density {WAVE_DENSITY}), "
          f"single chip vs 2-chip fleet [{SCALE}]")
    single = _run(chips=1)
    fleet = _run(chips=2)
    rows = [
        [r["chips"], round(r["final_accuracy"], 4), r["num_remaps"],
         r["num_evictions"], r["interchip_flits"],
         r.get("active_faulty", "-"), f"{r.get('active_fraction', 0):.2%}"]
        for r in (single, fleet)
    ]
    print(render_table(
        ["chips", "final acc", "remaps", "evictions", "interchip flits",
         "active faulty", "active frac"],
        rows,
        title="stranded single chip vs fleet eviction under the wave",
    ))
    payload = {
        "wave_density": WAVE_DENSITY,
        "scale": SCALE,
        "single_chip": single,
        "fleet": fleet,
    }
    save_results("fleet", payload)
    return payload


def test_fleet(benchmark):
    payload = benchmark.pedantic(run_fleet, rounds=1, iterations=1)
    single, fleet = payload["single_chip"], payload["fleet"]
    # The fleet must actually evict across chips, paying a visible
    # interconnect cost; a single chip has no such escape hatch.
    assert fleet["num_evictions"] >= 1, fleet
    assert fleet["interchip_flits"] > 0 and fleet["interchip_cycles"] > 0
    assert single["num_evictions"] == 0
    # Scale-out benefit: evicting to the clean chip leaves fewer faulty
    # cells under live tasks than the stranded chip keeps.
    assert fleet["active_fraction"] < single["active_fraction"], (
        single, fleet,
    )


if __name__ == "__main__":
    run_fleet()
