"""Assemble bench_output.txt: pytest logs + figure tables from results.

``pytest -q`` captures the tables the bench functions print; the
authoritative data lives in ``benchmarks/results/*.json``.  This script
stitches the pytest logs together and re-renders every figure's table
from the saved JSON so the final artifact is self-contained.

Usage: python benchmarks/assemble_output.py
"""

from __future__ import annotations

import json
import pathlib

from repro.utils.tabulate import render_table

ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS = ROOT / "benchmarks" / "results"
LOGS = [
    "bench_fast.log",
    "bench_fig57.log",
    "bench_fig7b.log",
    "bench_fig6b.log",
    "bench_fig8.log",
]


def _load(name: str):
    path = RESULTS / f"{name}.json"
    if not path.exists():
        return None
    return json.loads(path.read_text())


def _fig4() -> str:
    data = _load("fig4")
    if not data:
        return ""
    out = []
    for key, sub in (("sa0", "a"), ("sa1", "b")):
        rows = [[int(r[0]), r[1] , r[2], r[3]] for r in data[key]]
        out.append(render_table(
            ["faults/col", "I_min (uA)", "I_mean (uA)", "I_max (uA)"],
            rows,
            title=f"Fig. 4({sub}): 4x4 crossbar {key.upper()} test current",
            ndigits=3,
        ))
    return "\n\n".join(out)


def _fig5() -> str:
    data = _load("fig5")
    if not data:
        return ""
    rows = [
        [m, a["ideal"], a["forward"], a["backward"],
         a["ideal"] - a["forward"], a["ideal"] - a["backward"]]
        for m, a in data.items()
    ]
    return render_table(
        ["model", "fault-free", "fwd 2%", "bwd 2%", "fwd loss", "bwd loss"],
        rows,
        title="Fig. 5: phase fault tolerance (paper: backward loses up to "
              "45%, forward ~unchanged)",
        ndigits=3,
    )


def _fig6() -> str:
    data = _load("fig6")
    if not data:
        return ""
    acc = data["accuracy"]
    models = list(acc)
    labels = list(next(iter(acc.values())))
    rows = [[m] + [acc[m][l] for l in labels] for m in models]
    rows.append(
        ["MEAN"] + [sum(acc[m][l] for m in models) / len(models)
                    for l in labels]
    )
    table = render_table(
        ["model"] + labels, rows,
        title="Fig. 6: mitigation methods under pre+post faults",
        ndigits=3,
    )
    return table + f"\nremap-d task remaps: {data.get('remaps', {})}"


def _fig7() -> str:
    data = _load("fig7")
    if not data:
        return ""
    out = []
    for model, payload in data.items():
        grid = payload["grid"]
        m_values = sorted({k.split(",")[0] for k in grid})
        n_values = sorted({k.split(",")[1] for k in grid})
        rows = []
        for m in m_values:
            rows.append([m] + [grid[f"{m},{n}"] for n in n_values])
        out.append(render_table(
            ["", *n_values], rows,
            title=f"Fig. 7 ({model}): Remap-D under (m, n) post-fault "
                  f"sweep (fault-free ref {payload['ideal']:.3f})",
            ndigits=3,
        ))
    return "\n\n".join(out)


def _fig8() -> str:
    data = _load("fig8")
    if not data:
        return ""
    out = []
    for dataset, by_model in data.items():
        rows = [
            [m, a["ideal"], a["none"], a["remap-d"],
             a["ideal"] - a["remap-d"]]
            for m, a in by_model.items()
        ]
        out.append(render_table(
            ["model", "ideal", "no protection", "remap-d", "remap-d loss"],
            rows,
            title=f"Fig. 8 ({dataset})",
            ndigits=3,
        ))
    return "\n\n".join(out)


def _overheads() -> str:
    data = _load("overheads")
    if not data:
        return ""
    rows = [
        ["BIST pass (ReRAM cycles)", data["bist_cycles"], "260"],
        ["BIST timing / epoch", f"{100 * data['bist_timing']:.4f}%", "0.13%"],
        ["Remap traffic (mean)", f"{100 * data['remap_traffic_mean']:.4f}%", "0.22%"],
        ["Remap traffic (worst)", f"{100 * data['remap_traffic_worst']:.4f}%", "0.36%"],
        ["BIST area", f"{100 * data['bist_area']:.2f}%", "0.61%"],
        ["AN-code area", f"{100 * data['an_code_area']:.2f}%", "6.3%"],
        ["Remap-T-10% area", f"{100 * data['remap_t10_area']:.2f}%", "~10%"],
        ["Remap power", f"{100 * data['remap_power']:.4f}%", "<0.5%"],
    ]
    return render_table(["overhead", "measured", "paper"], rows,
                        title="Section IV.C overheads")


def _ablation() -> str:
    data = _load("ablation")
    if not data:
        return ""
    return render_table(
        ["variant", "final accuracy"],
        [[k, v] for k, v in data.items()],
        title="Remap-D design ablations (resnet12)",
        ndigits=3,
    )


def main() -> None:
    sections = [
        "=== Remap-D reproduction: benchmark suite output ===",
        "(figure tables re-rendered from benchmarks/results/*.json; "
        "pytest-benchmark session logs appended below)",
        _fig4(), _fig5(), _fig6(), _fig7(), _fig8(), _overheads(), _ablation(),
    ]
    body = "\n\n".join(s for s in sections if s)
    log_parts = []
    for log in LOGS:
        path = ROOT / log
        if path.exists() and path.stat().st_size > 10:
            log_parts.append(f"----- {log} -----\n{path.read_text()}")
    out = body + "\n\n\n=== pytest-benchmark session logs ===\n\n" + "\n".join(log_parts)
    (ROOT / "bench_output.txt").write_text(out)
    print(f"wrote bench_output.txt ({len(out.splitlines())} lines)")


if __name__ == "__main__":
    main()
