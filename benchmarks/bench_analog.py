"""Analog-realism ablation — Fig. 5/6 legs rerun under each non-ideality.

The remapping comparison of the paper assumes ideal analog peripherals.
This bench reruns the headline legs with the `repro.analog` stack turned
on one layer at a time (DAC/ADC quantization, conductance mapping,
IR drop, soft errors with scrubbing) and all together:

* a Fig. 6-style policy grid (none / remap-t-10% / remap-d under
  pre+post faults) per analog preset, reporting each policy's accuracy
  delta vs. its own ideal-periphery ("off") run;
* a Fig. 5-style phase leg (2% backward-phase faults, no protection)
  under "off" vs. "full" — the phase asymmetry must survive realistic
  peripherals for the phase-priority rule to stay justified.

Expected shape: the deterministic layers (quant / gmap / irdrop) are
mild, scrubbed soft errors stay recoverable, and remap-d keeps its lead
over no-protection under the full stack.
"""

from repro.analog import ANALOG_PRESETS
from repro.runner import ExperimentCell
from repro.utils.config import FaultConfig
from repro.utils.tabulate import render_table

from _common import (
    MODELS,
    SCALE,
    experiment,
    fig6_fault_config,
    run_cells,
    save_results,
)

PRESETS = ["off", "quant", "gmap", "irdrop", "soft", "full"]

POLICIES: list[tuple[str, str, float]] = [
    ("none", "none", 0.0),
    ("remap-t-10%", "remap-t", 0.10),
    ("remap-d", "remap-d", 0.0),
]

PHASE_DENSITY = 0.02


def _phase_cell(model: str, preset: str) -> ExperimentCell:
    faults = FaultConfig(
        pre_enabled=False,
        post_enabled=False,
        phase_target="backward",
        phase_density=PHASE_DENSITY,
    )
    return ExperimentCell(
        (model, "phase-bwd", preset),
        experiment(model, "none", faults, analog=ANALOG_PRESETS[preset]),
        tags={"leg": "fig5", "preset": preset},
    )


def run_analog() -> dict:
    faults = fig6_fault_config()
    cells = [
        ExperimentCell(
            (model, label, preset),
            experiment(
                model, policy, faults, policy_param=param,
                analog=ANALOG_PRESETS[preset],
            ),
            tags={"leg": "fig6", "policy": policy, "preset": preset},
        )
        for model in MODELS
        for label, policy, param in POLICIES
        for preset in PRESETS
    ]
    cells += [
        _phase_cell(model, preset)
        for model in MODELS
        for preset in ("off", "full")
    ]
    by_key = run_cells(cells, name="analog")

    grid: dict[str, dict[str, dict[str, float]]] = {}
    deltas: dict[str, dict[str, dict[str, float]]] = {}
    for model in MODELS:
        grid[model] = {}
        deltas[model] = {}
        for label, _, _ in POLICIES:
            accs = {
                preset: by_key[(model, label, preset)].final_accuracy
                for preset in PRESETS
            }
            grid[model][label] = accs
            deltas[model][label] = {
                preset: accs[preset] - accs["off"]
                for preset in PRESETS
                if preset != "off"
            }
    phase: dict[str, dict[str, float]] = {
        model: {
            preset: by_key[(model, "phase-bwd", preset)].final_accuracy
            for preset in ("off", "full")
        }
        for model in MODELS
    }

    labels = [label for label, _, _ in POLICIES]
    rows = [
        [model, label] + [grid[model][label][p] for p in PRESETS]
        for model in MODELS
        for label in labels
    ]
    print()
    print(render_table(
        ["model", "policy"] + PRESETS, rows,
        title="Fig. 6 legs per analog preset (accuracy; paper assumes "
              "ideal peripherals = the 'off' column)",
        ndigits=3,
    ))
    delta_rows = [
        [model, label]
        + [deltas[model][label][p] for p in PRESETS if p != "off"]
        for model in MODELS
        for label in labels
    ]
    print(render_table(
        ["model", "policy"] + [p for p in PRESETS if p != "off"],
        delta_rows,
        title="accuracy delta vs. ideal-periphery run of the same policy",
        ndigits=3,
    ))
    phase_rows = [
        [model, phase[model]["off"], phase[model]["full"]]
        for model in MODELS
    ]
    print(render_table(
        ["model", "bwd-2% (off)", "bwd-2% (full)"], phase_rows,
        title="Fig. 5 backward leg under the full analog stack",
        ndigits=3,
    ))
    payload = {"accuracy": grid, "delta_vs_off": deltas, "phase_bwd": phase}
    save_results("analog", payload)
    return payload


def test_analog_ablation(benchmark):
    payload = benchmark.pedantic(run_analog, rounds=1, iterations=1)
    grid = payload["accuracy"]
    mean = lambda label, preset: sum(  # noqa: E731
        grid[m][label][preset] for m in MODELS
    ) / len(MODELS)
    # Every cell trained to a real accuracy (no NaN-ed failures).
    for model in grid:
        for label in grid[model]:
            for acc in grid[model][label].values():
                assert acc == acc, (model, label)
    for accs in payload["phase_bwd"].values():
        for acc in accs.values():
            assert acc == acc
    # Something learned somewhere: the grid is not uniformly at the
    # 10-class chance floor.
    best = max(
        acc for m in grid.values() for pol in m.values()
        for acc in pol.values()
    )
    assert best > 0.15
    if SCALE == "quick":
        # Four quick epochs under pre+post faults *plus* analog layers
        # hover near chance — policy rankings there are noise, so the
        # ordering gates only run at the default training recipe.
        return
    # The deterministic layers are perturbations, not catastrophes: the
    # unprotected baseline still learns under the full stack.
    assert mean("none", "full") > 0.15
    # Remap-D's headline survives realistic peripherals.
    assert mean("remap-d", "full") > mean("none", "full") - 0.02
