"""Live-monitoring smoke: metrics endpoint, SLO breach, flight dump.

Launches a real ``repro sweep`` subprocess with the monitoring plane on
(``--metrics-port`` + ``--alert`` + ``--flight-dir``) and one worker
SIGKILL'd mid-sweep by the ``REPRO_RUNNER_CHAOS`` injector, then asserts
the observability contract end to end:

* mid-run ``GET /metrics`` answers valid Prometheus text exposition and
  the counters are *increasing* between scrapes — the live view is fed
  by streaming, not reconstructed after the fact;
* ``GET /snapshot.json`` carries the alert states ``repro top`` renders;
* the chaos-forced retry violates the ``runner.retries <= 0`` SLO rule:
  an ``alert_fired`` event lands in the trace and the sweep exits with
  the dedicated SLO-breach code (3) even though every cell succeeded;
* the SIGKILL'd worker leaves a flight-recorder dump that
  ``repro report`` renders.

Used as the CI live-monitoring gate; also runnable by hand::

    PYTHONPATH=src REPRO_BENCH_SCALE=quick python benchmarks/live_smoke.py
"""

import glob
import json
import os
import socket
import subprocess
import sys
import time
import urllib.error
import urllib.request

os.environ.setdefault("REPRO_BENCH_SCALE", "quick")

TRACE = "live_trace.jsonl"
FLIGHT_DIR = "flights"
EXIT_SLO_BREACH = 3
SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                   "src")


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _scrape(port: int) -> str | None:
    try:
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}/metrics", timeout=2.0
        ) as resp:
            return resp.read().decode("utf-8")
    except (urllib.error.URLError, OSError):
        return None


def _counters(text: str) -> dict[str, int]:
    out: dict[str, int] = {}
    for line in text.splitlines():
        if line.startswith("#") or not line.strip():
            continue
        name, _, value = line.partition(" ")
        if name.endswith("_total") and "{" not in name:
            out[name] = int(float(value))
    return out


def main() -> int:
    port = _free_port()
    env = dict(
        os.environ,
        PYTHONPATH=os.pathsep.join(
            p for p in (SRC, os.environ.get("PYTHONPATH")) if p
        ),
        # SIGKILL the (vgg11, none, seed 2) cell's first attempt; the
        # retry runs clean, so the only failure signal is the SLO rule.
        REPRO_RUNNER_CHAOS="crash:('vgg11', 'none', 2, 1):1",
        REPRO_TELEMETRY_FLUSH="0.1",  # snappy streaming for the scrapes
    )
    for stale in glob.glob(os.path.join(FLIGHT_DIR, "flight_*.jsonl")):
        os.unlink(stale)
    cmd = [
        sys.executable, "-m", "repro", "sweep",
        "--models", "vgg11", "resnet12",
        "--policies", "none",
        "--seeds", "1", "2",
        "--workers", "2", "--retries", "2",
        "--epochs", "2", "--n-train", "64", "--n-test", "32",
        "--crossbar-size", "32", "--quiet",
        "--trace", TRACE,
        "--metrics-port", str(port),
        "--alert", "runner.retries <= 0",
        "--flight-dir", FLIGHT_DIR,
    ]
    proc = subprocess.Popen(cmd, env=env)

    # Scrape the endpoint for as long as the sweep runs; every sample is
    # a full Prometheus exposition whose *_total counters must ratchet.
    samples: list[dict[str, int]] = []
    saw_type_lines = False
    while proc.poll() is None:
        text = _scrape(port)
        if text is not None:
            assert text.endswith("\n"), "exposition must end with newline"
            saw_type_lines |= any(
                line.startswith("# TYPE repro_") for line in text.splitlines()
            )
            samples.append(_counters(text))
        time.sleep(0.25)
    code = proc.wait()

    assert len(samples) >= 2, (
        f"only {len(samples)} successful mid-run scrapes - sweep too fast "
        "for the smoke, raise --epochs"
    )
    assert saw_type_lines, "no repro_-prefixed TYPE lines in exposition"
    first, last = samples[0], samples[-1]
    assert sum(last.values()) > sum(first.values()), (first, last)
    # Parent-side runner counters ratchet strictly (worker sources use
    # replace semantics, so a chaos retry may briefly reset one source).
    runner_ok = all(
        last.get(name, 0) >= value
        for name, value in first.items()
        if name.startswith("repro_runner_")
    )
    assert runner_ok, (first, last)

    # The chaos retry breaches `runner.retries <= 0`: exit code 3, not 0
    # (cells all passed) and not 1 (nothing hard-failed).
    assert code == EXIT_SLO_BREACH, f"expected exit {EXIT_SLO_BREACH}, got {code}"

    records = [json.loads(line) for line in open(TRACE, encoding="utf-8")]
    fired = [r for r in records if r["kind"] == "alert_fired"]
    assert fired, "no alert_fired event in the trace"
    assert fired[0]["payload"]["rule"] == "runner.retries <= 0", fired
    summary = [r["payload"] for r in records
               if r["kind"] == "telemetry_summary"][-1]
    assert summary["counters"].get("alerts.fired", 0) >= 1, summary["counters"]
    assert summary["counters"].get("runner.cell_retries") == 1, \
        summary["counters"]

    # The SIGKILL'd worker never reached its exit path, so its last
    # flight-recorder autodump must still be on disk and renderable.
    dumps = sorted(glob.glob(os.path.join(FLIGHT_DIR, "flight_*.jsonl")))
    assert dumps, f"no flight dumps in {FLIGHT_DIR}/"
    report = subprocess.run(
        [sys.executable, "-m", "repro", "report", dumps[0]],
        env=env, capture_output=True, text=True,
    )
    assert report.returncode == 0, report.stderr
    assert report.stdout.strip(), "flight-dump report rendered nothing"

    print(
        f"live smoke ok: {len(samples)} mid-run scrapes "
        f"({sum(first.values())} -> {sum(last.values())} counter total), "
        f"SLO breach exit {code}, {len(fired)} alert_fired, "
        f"{len(dumps)} flight dumps rendered"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
