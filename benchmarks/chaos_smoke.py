"""Chaos smoke: a crashing worker must not hang or abort a sweep.

Runs a two-cell quick-scale sweep in which one cell's worker is killed
with SIGKILL on its first attempt (via the ``REPRO_RUNNER_CHAOS`` fault
injector), then asserts the resilience contract end to end:

* the sweep completes — no ``imap_unordered``-style hang on the lost
  task, no abort;
* the killed cell is retried and its final result is a success with
  ``attempts == 2``, recorded in ``runner.cell_crashes`` /
  ``runner.cell_retries`` counters and a ``cell_retried`` event;
* a valid JSONL checkpoint holds every finished cell, and re-running
  against it restores all cells bit-identically without touching a
  worker.

Used as the CI resilience gate; also runnable by hand::

    PYTHONPATH=src REPRO_BENCH_SCALE=quick python benchmarks/chaos_smoke.py
"""

import json
import os
import sys

os.environ.setdefault("REPRO_BENCH_SCALE", "quick")

from repro.runner import ExperimentCell, run_experiments
from repro.telemetry import Telemetry
from repro.utils.config import FaultConfig

from _common import CHECKPOINT_DIR, experiment


def main() -> int:
    # SIGKILL the "chaos-victim" worker on attempt 1 only; the retry runs
    # clean.  The bystander cell must be unaffected throughout.
    os.environ["REPRO_RUNNER_CHAOS"] = "crash:chaos-victim:1"
    checkpoint = CHECKPOINT_DIR / "chaos_smoke.jsonl"
    if checkpoint.exists():
        checkpoint.unlink()

    faults = FaultConfig(pre_enabled=False, post_enabled=False)
    cells = [
        ExperimentCell("chaos-victim", experiment("vgg11", "none", faults)),
        ExperimentCell("bystander", experiment("resnet12", "none", faults)),
    ]

    tel = Telemetry(echo=False)
    results = run_experiments(
        cells, workers=2, telemetry=tel, timeout=600, retry=2,
        checkpoint=checkpoint,
    )
    by_key = {r.key: r for r in results}
    assert all(r.ok for r in results), [r.error for r in results]
    victim = by_key["chaos-victim"]
    assert victim.attempts == 2, f"expected one retry, got {victim.attempts}"
    assert by_key["bystander"].attempts == 1
    assert tel.counters.get("runner.cell_crashes") == 1, tel.counters
    assert tel.counters.get("runner.cell_retries") == 1, tel.counters
    retried = [e for e in tel.events if e["kind"] == "cell_retried"]
    assert retried and retried[0]["payload"]["reason"] == "crashed", retried

    with open(checkpoint, "r", encoding="utf-8") as fh:
        records = [json.loads(line) for line in fh if line.strip()]
    assert len(records) == len(cells), records
    for record in records:
        assert {"v", "fingerprint", "key", "ok", "payload"} <= set(record)
        assert record["ok"] is True

    # Resume against the checkpoint (chaos still armed — restored cells
    # never reach a worker): bit-identical, zero training.
    tel2 = Telemetry(echo=False)
    resumed = run_experiments(
        cells, workers=2, telemetry=tel2, checkpoint=checkpoint,
    )
    assert all(r.restored for r in resumed)
    assert tel2.counters.get("runner.cells_restored") == len(cells)
    for before, after in zip(results, resumed):
        assert after.final_accuracy == before.final_accuracy
        assert (
            after.result.train_result.accuracy_curve()
            == before.result.train_result.accuracy_curve()
        )

    print(
        "chaos smoke ok: SIGKILL'd cell retried "
        f"({victim.attempts} attempts), sweep completed, "
        f"{len(records)}-record checkpoint restored bit-identically"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
