"""Fig. 8 — scalability to harder datasets (synth-CIFAR-100, synth-SVHN).

Same pre+post fault configuration as Fig. 6; the paper trains the six
CNNs on CIFAR-100 and SVHN and shows Remap-D keeps the loss small
(1.32% average on CIFAR-100, <=0.45% on SVHN) while unprotected training
loses tens of percent on CIFAR-100.
"""

from repro.runner import ExperimentCell
from repro.utils.config import FaultConfig
from repro.utils.tabulate import render_table

from _common import (
    MODELS,
    experiment,
    fig6_fault_config,
    run_cells,
    save_results,
)

DATASETS = ["synth-svhn", "synth-cifar100"]
POLICIES = [("ideal", "ideal"), ("none", "none"), ("remap-d", "remap-d")]


def _cell(dataset: str, model: str, label: str, policy: str) -> ExperimentCell:
    faults = (
        FaultConfig(pre_enabled=False, post_enabled=False)
        if policy == "ideal"
        else fig6_fault_config()
    )
    return ExperimentCell(
        (dataset, model, label),
        experiment(model, policy, faults, dataset=dataset),
    )


def run_fig8() -> dict:
    by_key = run_cells(
        (
            _cell(dataset, model, label, policy)
            for dataset in DATASETS
            for model in MODELS
            for label, policy in POLICIES
        ),
        name="fig8",
    )
    results: dict[str, dict[str, dict[str, float]]] = {}
    for dataset in DATASETS:
        results[dataset] = {}
        rows = []
        for model in MODELS:
            accs = {
                label: by_key[(dataset, model, label)].final_accuracy
                for label, _ in POLICIES
            }
            results[dataset][model] = accs
            rows.append([
                model, accs["ideal"], accs["none"], accs["remap-d"],
                accs["ideal"] - accs["remap-d"],
            ])
        print()
        print(render_table(
            ["model", "ideal", "no protection", "remap-d", "remap-d loss"],
            rows,
            title=f"Fig. 8 ({dataset}): pre+post faults "
                  "(paper: remap-d loss small, no-protection loses heavily)",
            ndigits=3,
        ))
    save_results("fig8", results)
    return results


def test_fig8_datasets(benchmark):
    results = benchmark.pedantic(run_fig8, rounds=1, iterations=1)
    for dataset, by_model in results.items():
        mean = lambda label: sum(  # noqa: E731
            r[label] for r in by_model.values()
        ) / len(by_model)
        # Remap-D recovers accuracy relative to no protection on the
        # harder datasets too (the paper's scalability claim).
        assert mean("remap-d") >= mean("none") - 0.02
