"""Ablations of Remap-D's design choices (DESIGN.md section 3).

Not a paper figure: these benches quantify the decisions the paper makes
implicitly — the trigger threshold, the receiver-selection rule and the
backward-phase priority — on one representative CNN.
"""

from repro.core.controller import run_experiment
from repro.core.policies import RemapDPolicy
from repro.utils.tabulate import render_table

import repro.core.policies as policies_module

from _common import experiment, fig6_fault_config, save_results

MODEL = "resnet12"


def _run(policy_kwargs: dict, threshold: float = 0.001) -> float:
    import repro.core.controller as controller_module

    cfg = experiment(MODEL, "remap-d", fig6_fault_config())
    cfg.remap_threshold = threshold
    # The controller builds policies through make_policy; substitute a
    # factory that configures the protocol variant under test.
    original = controller_module.make_policy

    def patched(name, param=None, thr=0.002):
        if name == "remap-d":
            return RemapDPolicy(threshold=threshold, **policy_kwargs)
        return original(name, param, thr)

    controller_module.make_policy = patched
    try:
        result = run_experiment(cfg)
    finally:
        controller_module.make_policy = original
    return result.final_accuracy


def run_ablation() -> dict:
    rows = []
    results = {}

    for label, kwargs, thr in [
        ("baseline (nearest, phase-priority)", {}, 0.001),
        ("receiver = lowest-density", {"receiver_rule": "lowest-density"}, 0.001),
        ("receiver = random", {"receiver_rule": "random"}, 0.001),
        ("no phase priority", {"phase_priority": False}, 0.001),
        ("threshold x10 (0.01)", {}, 0.01),
    ]:
        acc = _run(kwargs, thr)
        results[label] = acc
        rows.append([label, acc])

    print()
    print(render_table(
        ["variant", "final accuracy"],
        rows,
        title=f"Remap-D design ablations ({MODEL})",
        ndigits=3,
    ))
    save_results("ablation", results)
    return results


def test_ablation(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    # All variants must at least produce a working training run.
    assert all(acc > 0.15 for acc in results.values())
