"""Ablations of Remap-D's design choices (DESIGN.md section 3).

Not a paper figure: these benches quantify the decisions the paper makes
implicitly — the trigger threshold, the receiver-selection rule and the
backward-phase priority — on one representative CNN.
"""

from repro.runner import ExperimentCell
from repro.utils.tabulate import render_table

from _common import experiment, fig6_fault_config, run_cells, save_results

MODEL = "resnet12"

#: (label, policy constructor kwargs, trigger threshold).
VARIANTS: list[tuple[str, dict, float]] = [
    ("baseline (nearest, phase-priority)", {}, 0.001),
    ("receiver = lowest-density", {"receiver_rule": "lowest-density"}, 0.001),
    ("receiver = random", {"receiver_rule": "random"}, 0.001),
    ("no phase priority", {"phase_priority": False}, 0.001),
    ("threshold x10 (0.01)", {}, 0.01),
]


def _cell(label: str, kwargs: dict, threshold: float) -> ExperimentCell:
    cfg = experiment(MODEL, "remap-d", fig6_fault_config())
    cfg.remap_threshold = threshold
    # The protocol variant under test rides in the config (picklable for
    # pool workers) and reaches RemapDPolicy through make_policy.
    cfg.policy_kwargs = dict(kwargs)
    return ExperimentCell(label, cfg)


def run_ablation() -> dict:
    by_key = run_cells(
        (_cell(label, kwargs, thr) for label, kwargs, thr in VARIANTS),
        name="ablation",
    )
    rows = []
    results = {}
    for label, _, _ in VARIANTS:
        acc = by_key[label].final_accuracy
        results[label] = acc
        rows.append([label, acc])

    print()
    print(render_table(
        ["variant", "final accuracy"],
        rows,
        title=f"Remap-D design ablations ({MODEL})",
        ndigits=3,
    ))
    save_results("ablation", results)
    return results


def test_ablation(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    # All variants must at least produce a working training run.
    assert all(acc > 0.15 for acc in results.values())
