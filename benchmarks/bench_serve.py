"""Serving-plane benchmarks: throughput, tail latency and chaos gates.

Measures the `repro serve` stack end to end — micro-batcher, health
router, replica forwards — and writes the numbers to
``benchmarks/results/serve.json`` (the recorded p50/p90/p99 baseline the
CI SLO gate compares against).

Acceptance gates (asserted by ``test_serve_bench``):

* **batching speedup** — saturated batched submission must serve >= 5x
  the requests/second of one-request-at-a-time submission *on the same
  server*.  Every forward runs at the fixed ``MAX_BATCH``-slot shape
  (that is the bit-determinism contract: BLAS kernels are not bit-stable
  across GEMM shapes, so a lone request pays a full-slot forward); the
  micro-batcher's job is to fill those slots, and this gate is the
  measure of that;
* **p99 SLO** — open-loop (Poisson) p99 at the probe rate must stay
  under ``SERVE_P99_SLO_MS``, a generous multiple of the recorded
  dev-machine baseline so shared CI runners pass while regressions
  (lost cache hits, serialized replicas, batcher stalls) still trip it;
* **chaos** — a fault wave injected mid-traffic must trigger *exactly
  one* online remap, zero failed requests, a ``remap_planned`` event in
  the merged trace, and an observable routing-weight drop on the
  degraded replica.
"""

from __future__ import annotations

import numpy as np

from repro.serve import InferenceServer, ServeConfig, run_loadgen
from repro.telemetry import Telemetry
from repro.utils.config import FaultConfig
from repro.utils.tabulate import render_table

from _common import SCALE, experiment, save_results

MODEL = "vgg11"
MAX_BATCH = 32

#: open-loop p99 (ms) recorded on the dev machine at the probe rate
#: below (the committed benchmarks/results/serve.json baseline: p50 67,
#: p99 89 at 300 req/s offered, 29.3x batching speedup).
SERVE_P99_BASELINE_MS = 89.3
#: CI gate: ~3x the recorded baseline, absorbing shared-runner variance
#: while still catching order-of-magnitude regressions.
SERVE_P99_SLO_MS = 250.0


def _config():
    cfg = experiment(MODEL, "remap-d", FaultConfig())
    # Serving benches never train: a small dataset keeps replica
    # construction (and CI wall clock) cheap.
    cfg.train.epochs = 1
    cfg.train.n_train = 64
    cfg.train.n_test = 32
    cfg.train.eval_batch = MAX_BATCH
    return cfg


def bench_throughput(duration: float = 3.0) -> dict:
    """Single-stream vs saturated batched submission on one server."""
    tel = Telemetry(echo=False)
    server = InferenceServer(
        _config(),
        # A small coalescing budget: negligible against the forward cost,
        # so the single-stream phase is not penalised by batching waits.
        ServeConfig(max_batch=MAX_BATCH, max_wait_us=200, replicas=1),
        telemetry=tel,
    )
    try:
        single = run_loadgen(server, mode="closed", concurrency=1,
                             duration_s=duration, seed=1)
        batched = run_loadgen(server, mode="closed",
                              concurrency=4 * MAX_BATCH,
                              duration_s=duration, seed=2)
        # Open-loop probe at ~40% of measured capacity: a stable-queue
        # operating point whose p99 is the SLO quantity.
        probe_rate = float(np.clip(0.4 * batched.throughput_rps, 20.0, 300.0))
        open_res = run_loadgen(server, mode="open", rate=probe_rate,
                               duration_s=duration, seed=3)
    finally:
        server.close()
    counters = tel.counters
    hits = counters.get("engine.cache_hits", 0)
    misses = counters.get("engine.cache_misses", 0)
    return {
        "max_batch": MAX_BATCH,
        "single": single.to_dict(),
        "batched": batched.to_dict(),
        "open": open_res.to_dict(),
        "probe_rate": probe_rate,
        "batching_speedup": batched.throughput_rps / single.throughput_rps,
        "p99_slo_ms": SERVE_P99_SLO_MS,
        "cache_hit_rate": hits / (hits + misses) if hits + misses else None,
    }


def bench_chaos(duration: float = 4.0) -> dict:
    """Mid-traffic fault wave: online remap, zero drops, weight drop."""
    tel = Telemetry(echo=False)
    server = InferenceServer(
        _config(),
        ServeConfig(max_batch=16, max_wait_us=500, replicas=2,
                    chaos="faults:10:0.02:0.3"),
        telemetry=tel,
    )
    try:
        load = run_loadgen(server, mode="open", rate=120.0,
                           duration_s=duration, seed=4)
    finally:
        server.close()
    counters = tel.counters
    # Routing-weight trajectory of the degraded replica: the 'degraded'
    # entry must sit strictly below that replica's registration weight.
    register: dict = {}
    degraded: dict = {}
    restored: dict = {}
    for e in tel.filter("route_weight"):
        p = e["payload"]
        rid, reason = p["replica"], p["reason"]
        if reason == "register":
            register[rid] = p["weight"]
        elif reason == "degraded" and rid not in degraded:
            degraded[rid] = p["weight"]
        elif reason == "restored":
            restored[rid] = p["weight"]
    weight_drops = {
        rid: register[rid] - w
        for rid, w in degraded.items() if rid in register
    }
    return {
        "load": load.to_dict(),
        "requests": counters.get("serve.requests", 0),
        "completed": counters.get("serve.completed", 0),
        "failed": counters.get("serve.failed", 0),
        "online_remaps": counters.get("serve.remaps_online", 0),
        "chaos_fault_cells": counters.get("serve.chaos_faults", 0),
        "remap_planned_events": len(tel.filter("remap_planned")),
        "online_remap_events": len(tel.filter("online_remap")),
        "register_weights": register,
        "degraded_weights": degraded,
        "restored_weights": restored,
        "weight_drops": weight_drops,
    }


def run_serve_bench() -> dict:
    duration = 2.0 if SCALE == "quick" else 3.0
    payload = {
        "model": MODEL,
        "scale": SCALE,
        "throughput": bench_throughput(duration),
        "chaos": bench_chaos(duration + 1.0),
    }
    tp = payload["throughput"]
    print()
    print(render_table(
        ["phase", "req/s", "p50 ms", "p99 ms"],
        [
            ["single-stream (closed, c=1)",
             tp["single"]["throughput_rps"],
             tp["single"]["latency_ms"].get("p50"),
             tp["single"]["latency_ms"].get("p99")],
            [f"batched (closed, c={4 * MAX_BATCH})",
             tp["batched"]["throughput_rps"],
             tp["batched"]["latency_ms"].get("p50"),
             tp["batched"]["latency_ms"].get("p99")],
            [f"open loop @ {tp['probe_rate']:.0f}/s",
             tp["open"]["throughput_rps"],
             tp["open"]["latency_ms"].get("p50"),
             tp["open"]["latency_ms"].get("p99")],
        ],
        title=f"serving throughput ({MODEL}, {MAX_BATCH} slots, 1 replica)",
        ndigits=2,
    ))
    print(f"batching speedup: {tp['batching_speedup']:.1f}x "
          f"(gate >= 5x); cache hit-rate "
          f"{100 * (tp['cache_hit_rate'] or 0):.1f}%")
    ch = payload["chaos"]
    print(f"chaos: {ch['completed']}/{ch['requests']} served, "
          f"{ch['failed']} failed, {ch['online_remaps']} online remap(s), "
          f"weight drops {ch['weight_drops']}")
    save_results("serve", payload)
    return payload


def test_serve_bench(benchmark):
    payload = benchmark.pedantic(run_serve_bench, rounds=1, iterations=1)
    tp = payload["throughput"]
    # Gate: micro-batched submission >= 5x one-at-a-time on the same
    # fixed-slot server.
    assert tp["batching_speedup"] >= 5.0, tp
    # Gate: open-loop p99 within the recorded-baseline SLO.
    assert tp["open"]["latency_ms"]["p99"] <= SERVE_P99_SLO_MS, tp["open"]
    # No request ever fails under plain load.
    assert tp["single"]["failed"] == 0 and tp["batched"]["failed"] == 0, tp
    ch = payload["chaos"]
    # Gate: the mid-traffic fault wave triggers exactly one online remap
    # and drops nothing.
    assert ch["failed"] == 0, ch
    assert ch["completed"] == ch["requests"], ch
    assert ch["online_remaps"] == 1, ch
    assert ch["online_remap_events"] == 1, ch
    assert ch["remap_planned_events"] >= 1, ch
    # Gate: the degraded replica's routing weight observably dropped.
    assert ch["weight_drops"] and all(d > 0 for d in ch["weight_drops"].values()), ch


if __name__ == "__main__":
    run_serve_bench()
