"""Hot-path microbenchmarks for the fault-aware training loop.

Times the sparse fused-clamp ``effective_matrix`` fast path against the
retained dense reference implementation (the pre-optimisation
formulation), one fault-aware training epoch, and a runner fan-out, and
writes the numbers to ``benchmarks/results/hotpath.json`` — the source of
the wall-clock figures quoted in EXPERIMENTS.md.

The headline acceptance number: at 2% stuck-cell density on 32x32 blocks
the fast path must beat the dense reference by >= 3x (it typically lands
near 15-20x, because the dense path allocates four boolean masks plus
several full-size float temporaries per call while the fast path touches
only the stuck positions).
"""

from __future__ import annotations

import statistics
import time

import numpy as np

from repro.faults.types import FaultType
from repro.reram.chip import Chip
from repro.runner import ExperimentCell, run_experiments
from repro.utils.config import ChipConfig, CrossbarConfig

from _common import SCALE, experiment, save_results
from repro.utils.config import FaultConfig
from repro.utils.tabulate import render_table

MATRIX_SHAPE = (256, 512)
BLOCK = 32
DENSITY = 0.02
REPS = 30


def _median_seconds(fn, reps: int = REPS) -> float:
    times = []
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return statistics.median(times)


def _faulty_mapping(density: float):
    """A (256, 512) layer copy on 32x32 blocks with random stuck cells."""
    chip = Chip(ChipConfig(crossbar=CrossbarConfig(rows=BLOCK, cols=BLOCK)))
    mapping = chip.allocate_layer_copy("bench", "forward", MATRIX_SHAPE)
    rng = np.random.default_rng(42)
    for _, _, pair_id in mapping.iter_blocks():
        pair = chip.pair(int(pair_id))
        for fmap in (pair.pos.fault_map, pair.neg.fault_map):
            count = int(round(density * fmap.cells))
            if count == 0:
                continue
            cells = rng.choice(fmap.cells, size=count, replace=False)
            is_sa0 = rng.random(count) < 0.5
            fmap.inject(cells[is_sa0], FaultType.SA0)
            fmap.inject(cells[~is_sa0], FaultType.SA1)
    chip.bump_fault_version()
    return chip, mapping, rng


def bench_effective_matrix(density: float) -> dict:
    chip, mapping, rng = _faulty_mapping(density)
    w = rng.normal(0, 0.1, MATRIX_SHAPE)
    # Warm up: calibrates scales and populates the index/overlay caches so
    # the timed region measures the steady-state per-step cost.
    mapping.effective_matrix(w, chip.pair, chip.fault_version)
    mapping.reference_effective_matrix(w, chip.pair, chip.fault_version)
    fast = _median_seconds(
        lambda: mapping.effective_matrix(w, chip.pair, chip.fault_version)
    )
    ref = _median_seconds(
        lambda: mapping.reference_effective_matrix(
            w, chip.pair, chip.fault_version
        )
    )
    return {
        "density": density,
        "fast_us": fast * 1e6,
        "reference_us": ref * 1e6,
        "speedup": ref / fast,
    }


def bench_train_epoch() -> dict:
    """One fault-aware training epoch of the quick-scale resnet12 cell."""
    from repro.core.controller import build_experiment

    cfg = experiment("resnet12", "none", FaultConfig())
    cfg.train.epochs = 1
    ctx = build_experiment(cfg)
    t0 = time.perf_counter()
    ctx.trainer.train_epoch(0)
    return {"model": "resnet12", "seconds": time.perf_counter() - t0}


def bench_runner_fanout(workers: int = 1) -> dict:
    """Wall-clock of a 2-cell fan-out (tiny fault-aware training runs)."""
    cells = []
    for i, model in enumerate(("vgg11", "resnet12")):
        cfg = experiment(model, "none", FaultConfig(), seed=11 + i)
        cfg.train.epochs = 1
        cfg.train.n_train = 64
        cfg.train.n_test = 32
        cells.append(ExperimentCell(model, cfg))
    t0 = time.perf_counter()
    results = run_experiments(cells, workers=workers)
    wall = time.perf_counter() - t0
    assert all(r.ok for r in results), [r.error for r in results]
    return {
        "workers": workers,
        "cells": len(cells),
        "wall_seconds": wall,
        "cell_seconds": [r.wall_seconds for r in results],
    }


def run_hotpath() -> dict:
    payload: dict = {
        "matrix_shape": list(MATRIX_SHAPE),
        "block": BLOCK,
        "scale": SCALE,
        "effective_matrix": {
            "fault_free": bench_effective_matrix(0.0),
            "faulty_2pct": bench_effective_matrix(DENSITY),
        },
        "train_epoch": bench_train_epoch(),
        "runner": [bench_runner_fanout(workers=1)],
    }
    rows = []
    for name, rec in payload["effective_matrix"].items():
        rows.append([
            name, rec["fast_us"], rec["reference_us"], rec["speedup"],
        ])
    print()
    print(render_table(
        ["case", "fast (us)", "reference (us)", "speedup"],
        rows,
        title=f"effective_matrix on {MATRIX_SHAPE} / {BLOCK}x{BLOCK} blocks "
              f"(median of {REPS})",
        ndigits=1,
    ))
    print(f"one fault-aware train epoch (resnet12, {SCALE} recipe): "
          f"{payload['train_epoch']['seconds']:.1f}s")
    print(f"runner fan-out ({payload['runner'][0]['cells']} cells, serial): "
          f"{payload['runner'][0]['wall_seconds']:.1f}s")
    save_results("hotpath", payload)
    return payload


def test_hotpath(benchmark):
    payload = benchmark.pedantic(run_hotpath, rounds=1, iterations=1)
    faulty = payload["effective_matrix"]["faulty_2pct"]
    # Acceptance: >= 3x over the dense reference at 2% density.
    assert faulty["speedup"] >= 3.0, faulty
    # The fault-free path is a cache-hit passthrough; it must not be
    # slower than the faulty path's reference implementation.
    ff = payload["effective_matrix"]["fault_free"]
    assert ff["fast_us"] < faulty["reference_us"]


if __name__ == "__main__":
    run_hotpath()
