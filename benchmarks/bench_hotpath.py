"""Hot-path microbenchmarks for the fault-aware training loop.

Times the sparse fused-clamp ``effective_matrix`` fast path against the
retained dense reference implementation (the pre-optimisation
formulation), the recomputation-elimination eval path (version-keyed
effective-weight cache + autograd-free inference), one fault-aware
training epoch, and a runner fan-out, and writes the numbers to
``benchmarks/results/hotpath.json`` — the source of the wall-clock
figures quoted in EXPERIMENTS.md.

Acceptance gates (asserted by ``test_hotpath``):

* at 2% stuck-cell density on 32x32 blocks the sparse clamp must beat
  the dense reference by >= 3x;
* on the reference (256, 512) layer, evaluation with the effective-weight
  cache + ``no_grad`` must beat the cache-off graph-building eval path
  (the PR 1 baseline) by >= 3x, and a fig5-style smoke cell must produce
  **bit-identical** accuracy curves with the fast paths on and off;
* the fused training loop must reproduce the reference loop's epoch loss
  exactly without being slower, and — on multi-core machines — the
  sharded data-parallel epoch must beat the recorded 2.07 s seed
  ``train_epoch`` baseline by >= 3x at the 4-rank recipe (scaled down
  proportionally when fewer cores are available).
"""

from __future__ import annotations

import statistics
import time

import numpy as np

from repro.faults.types import FaultType
from repro.nn.fault_aware import CrossbarEngine
from repro.nn.layers import Linear, Sequential
from repro.nn.tensor import Tensor, no_grad
from repro.reram.chip import Chip
from repro.runner import ExperimentCell, run_experiments
from repro.telemetry import Telemetry
from repro.utils.config import ChipConfig, CrossbarConfig

from _common import SCALE, experiment, save_results
from repro.utils.config import FaultConfig
from repro.utils.tabulate import render_table

MATRIX_SHAPE = (256, 512)
BLOCK = 32
DENSITY = 0.02
REPS = 30


def _median_seconds(fn, reps: int = REPS) -> float:
    times = []
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return statistics.median(times)


def _faulty_mapping(density: float):
    """A (256, 512) layer copy on 32x32 blocks with random stuck cells."""
    chip = Chip(ChipConfig(crossbar=CrossbarConfig(rows=BLOCK, cols=BLOCK)))
    mapping = chip.allocate_layer_copy("bench", "forward", MATRIX_SHAPE)
    rng = np.random.default_rng(42)
    for _, _, pair_id in mapping.iter_blocks():
        pair = chip.pair(int(pair_id))
        for fmap in (pair.pos.fault_map, pair.neg.fault_map):
            count = int(round(density * fmap.cells))
            if count == 0:
                continue
            cells = rng.choice(fmap.cells, size=count, replace=False)
            is_sa0 = rng.random(count) < 0.5
            fmap.inject(cells[is_sa0], FaultType.SA0)
            fmap.inject(cells[~is_sa0], FaultType.SA1)
    chip.bump_fault_version()
    return chip, mapping, rng


def bench_effective_matrix(density: float) -> dict:
    chip, mapping, rng = _faulty_mapping(density)
    w = rng.normal(0, 0.1, MATRIX_SHAPE)
    # Warm up: calibrates scales and populates the index/overlay caches so
    # the timed region measures the steady-state per-step cost.
    mapping.effective_matrix(w, chip.pair, chip.fault_version)
    mapping.reference_effective_matrix(w, chip.pair, chip.fault_version)
    fast = _median_seconds(
        lambda: mapping.effective_matrix(w, chip.pair, chip.fault_version)
    )
    ref = _median_seconds(
        lambda: mapping.reference_effective_matrix(
            w, chip.pair, chip.fault_version
        )
    )
    return {
        "density": density,
        "fast_us": fast * 1e6,
        "reference_us": ref * 1e6,
        "speedup": ref / fast,
    }


def _bound_eval_layer():
    """A bound Linear with the reference (256, 512) matrix, 2% stuck cells
    in both crossbar copies, and a 64-sample eval batch."""
    chip = Chip(ChipConfig(crossbar=CrossbarConfig(rows=BLOCK, cols=BLOCK)))
    rng = np.random.default_rng(7)
    model = Sequential(Linear(MATRIX_SHAPE[1], MATRIX_SHAPE[0], rng=rng))
    engine = CrossbarEngine(chip).bind(model)
    (key,) = engine.layer_keys()
    for mapping in engine.copies[key]:
        for _, _, pair_id in mapping.iter_blocks():
            pair = chip.pair(int(pair_id))
            for fmap in (pair.pos.fault_map, pair.neg.fault_map):
                count = int(round(DENSITY * fmap.cells))
                cells = rng.choice(fmap.cells, size=count, replace=False)
                is_sa0 = rng.random(count) < 0.5
                fmap.inject(cells[is_sa0], FaultType.SA0)
                fmap.inject(cells[~is_sa0], FaultType.SA1)
    chip.bump_fault_version()
    x = rng.normal(0.0, 1.0, size=(64, MATRIX_SHAPE[1]))
    return model, engine, x


def bench_eval_path() -> dict:
    """Full eval passes: PR 1 baseline vs cached clamp + no_grad.

    Baseline re-clamps both crossbar copies and builds the autograd graph
    on every batch (cache disabled, grad enabled); the fast path serves
    the forward clamp from the version-keyed cache and skips the backward
    copy and the graph entirely.  Same layer, same faults, same batch —
    the outputs are asserted bit-identical before timing.
    """
    model, engine, x = _bound_eval_layer()

    def baseline() -> np.ndarray:
        engine.cache_enabled = False
        return model(Tensor(x)).data

    def fast() -> np.ndarray:
        engine.cache_enabled = True
        with no_grad():
            return model(Tensor(x)).data

    np.testing.assert_array_equal(baseline(), fast())  # also warms both up
    base_s = _median_seconds(baseline)
    fast_s = _median_seconds(fast)
    return {
        "batch": int(x.shape[0]),
        "baseline_us": base_s * 1e6,
        "fast_us": fast_s * 1e6,
        "speedup": base_s / fast_s,
    }


def bench_cache_hit() -> dict:
    """forward_weight alone: cache hit vs forced miss (version bump)."""
    model, engine, _ = _bound_eval_layer()
    (layer,) = model.items
    w2d = layer.weight.data
    engine.forward_weight(layer.layer_key, w2d)  # prime the cache

    hit_s = _median_seconds(lambda: engine.forward_weight(layer.layer_key, w2d))

    def miss() -> None:
        layer.weight.bump_version()
        engine.forward_weight(layer.layer_key, w2d)

    miss()
    miss_s = _median_seconds(miss)
    return {
        "hit_us": hit_s * 1e6,
        "miss_us": miss_s * 1e6,
        "speedup": miss_s / hit_s,
    }


def bench_telemetry_overhead() -> dict:
    """Cache-hit MVM cost with a telemetry sink attached vs detached.

    The telemetry refactor must be overhead-neutral on the per-MVM fast
    path: the engine keeps its counters as plain ints and only the cache
    *miss* path consults the sink (behind the disabled-by-default
    ``detail`` flag), so a cache-hit ``forward_weight`` executes the
    identical instruction stream either way.  Samples interleave the two
    configurations to cancel thermal/frequency drift; the CI gate asserts
    < 3% regression.

    A third leg repeats the "on" measurement while a ``DeltaStreamer``
    ships periodic snapshots of the sink to a live in-process
    ``LiveAggregator`` — the live-monitoring transport must stay off the
    hot path (a background thread reading the sink on a coarse interval),
    so it is held to the same < 3% gate.
    """
    from repro.telemetry.live import DeltaStreamer, LiveAggregator

    model, engine, _ = _bound_eval_layer()
    (layer,) = model.items
    w2d = layer.weight.data
    key = layer.layer_key
    engine.forward_weight(key, w2d)  # prime the cache

    def loop() -> None:
        fw = engine.forward_weight
        for _ in range(200):
            fw(key, w2d)

    loop()  # warm up
    off_times: list[float] = []
    on_times: list[float] = []
    stream_times: list[float] = []
    tel = Telemetry(echo=False)
    aggregator = LiveAggregator()
    # production flush cadence (REPRO_TELEMETRY_FLUSH / 0.5 s default)
    streamer = DeltaStreamer(tel, aggregator.address, source="bench")
    assert streamer.connected, "bench streamer failed to connect"
    try:
        for _ in range(REPS):
            engine.telemetry = None
            t0 = time.perf_counter()
            loop()
            off_times.append(time.perf_counter() - t0)
            engine.telemetry = tel
            tel.count("bench.reps")  # keep frames non-trivial
            t0 = time.perf_counter()
            loop()
            on_times.append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            loop()
            stream_times.append(time.perf_counter() - t0)
        deadline = time.perf_counter() + 5.0
        while (not aggregator_saw_bench(aggregator)
               and time.perf_counter() < deadline):
            streamer.flush()
            time.sleep(0.02)
    finally:
        streamer.close()
        aggregator.close()
    off = statistics.median(off_times)
    on = statistics.median(on_times)
    streaming = statistics.median(stream_times)
    assert not tel.events, "cache-hit path must not emit telemetry events"
    assert aggregator_saw_bench(aggregator), \
        "streamer never delivered a frame to the aggregator"
    return {
        "calls_per_rep": 200,
        "telemetry_off_us": off * 1e6,
        "telemetry_on_us": on * 1e6,
        "streaming_on_us": streaming * 1e6,
        "overhead_fraction": on / off - 1.0,
        "streaming_overhead_fraction": streaming / off - 1.0,
    }


def aggregator_saw_bench(aggregator) -> bool:
    """True when the bench streamer's frames actually reached the
    aggregator (so the streaming leg measured live transport, not a
    dead socket)."""
    return "bench" in aggregator.rollup().get("sources", {})


def bench_profiling_overhead() -> dict:
    """Full layer forward with per-layer profiling spans ON vs OFF.

    Profiling (``Telemetry.profile``) is opt-in precisely because it does
    add measurable per-forward work (a span per layer call: two
    perf_counter reads, an event append, contextvar push/pop).  This
    bench quantifies that price — it is reported, not gated; the gated
    quantity is the profiling-OFF overhead measured by
    ``bench_telemetry_overhead``.
    """
    model, engine, x = _bound_eval_layer()
    tel = Telemetry(echo=False)
    engine.telemetry = tel
    xb = Tensor(x)

    def loop() -> None:
        with no_grad():
            for _ in range(50):
                model(xb)

    loop()  # warm up (and prime the weight cache)
    off_times: list[float] = []
    on_times: list[float] = []
    for _ in range(REPS):
        tel.profile = False
        t0 = time.perf_counter()
        loop()
        off_times.append(time.perf_counter() - t0)
        tel.profile = True
        t0 = time.perf_counter()
        loop()
        on_times.append(time.perf_counter() - t0)
    tel.profile = False
    off = statistics.median(off_times)
    on = statistics.median(on_times)
    assert tel.spans, "profiling ON must record layer spans"
    return {
        "calls_per_rep": 50,
        "profile_off_us": off * 1e6,
        "profile_on_us": on * 1e6,
        "overhead_fraction": on / off - 1.0,
    }


def bench_cache_equivalence() -> dict:
    """Fig. 5-style smoke cell run with the fast paths on and off.

    The cache and no_grad are pure optimisations; the accuracy curve and
    per-epoch losses must be bit-identical either way.
    """
    from repro.core.controller import run_experiment

    def smoke(eval_fastpath: bool):
        cfg = experiment(
            "vgg11", "none",
            FaultConfig(phase_target="forward", phase_density=0.02),
            seed=13,
        )
        cfg.train.epochs = 1
        cfg.train.n_train = 64
        cfg.train.n_test = 32
        cfg.train.eval_fastpath = eval_fastpath
        return run_experiment(cfg)

    fast = smoke(True)
    slow = smoke(False)
    fast_curve = fast.train_result.accuracy_curve()
    slow_curve = slow.train_result.accuracy_curve()
    fast_losses = [h["loss"] for h in fast.train_result.history]
    slow_losses = [h["loss"] for h in slow.train_result.history]
    return {
        "accuracy_curve": fast_curve,
        "identical": fast_curve == slow_curve and fast_losses == slow_losses,
    }


#: ``train_epoch.seconds`` recorded by the pre-optimisation seed run of
#: this bench (benchmarks/results/hotpath.json @ PR 5) — the fixed
#: denominator of the training-speedup gate.
TRAIN_EPOCH_BASELINE_S = 2.0746


def bench_train_epoch() -> dict:
    """Reference vs fused vs data-parallel training epoch (resnet12).

    Three configurations of the same cell: the retained ``fused=False``
    reference loop, the fused hot loop (one ``step_weights`` probe per
    (step, layer), arena temporaries, in-place GEMMs) and — when the
    machine has more than one core — the sharded data-parallel trainer.
    The reference and fused losses must match exactly; the dp loss is
    *not* compared (per-shard batch-norm is a different, worker-count-
    invariant recipe).
    """
    import os

    from repro.core.controller import build_experiment

    def run(fused: bool, workers: int = 0) -> tuple[float, float]:
        cfg = experiment("resnet12", "none", FaultConfig())
        cfg.train.epochs = 1
        cfg.train.fused = fused
        cfg.train.data_parallel = workers
        ctx = build_experiment(cfg)
        ctx.engine.reset_cache_stats()
        try:
            t0 = time.perf_counter()
            loss = ctx.trainer.train_epoch(0)
            return time.perf_counter() - t0, loss
        finally:
            shutdown = getattr(ctx.trainer, "shutdown", None)
            if shutdown is not None:
                shutdown()

    ref_s, ref_loss = run(fused=False)
    fused_s, fused_loss = run(fused=True)
    payload = {
        "model": "resnet12",
        "baseline_recorded_s": TRAIN_EPOCH_BASELINE_S,
        "reference_seconds": ref_s,
        "seconds": fused_s,
        "fused_speedup": ref_s / fused_s,
        "identical_loss": ref_loss == fused_loss,
        "cpus": os.cpu_count() or 1,
    }
    cpus = payload["cpus"]
    if cpus >= 2:
        workers = min(4, cpus)  # grad_shards defaults to 4
        dp_s, _ = run(fused=True, workers=workers)
        payload["dp_workers"] = workers
        payload["dp_seconds"] = dp_s
        payload["dp_speedup_vs_baseline"] = TRAIN_EPOCH_BASELINE_S / dp_s
    return payload


def bench_runner_fanout(workers: int = 1) -> dict:
    """Wall-clock of a 2-cell fan-out (tiny fault-aware training runs)."""
    cells = []
    for i, model in enumerate(("vgg11", "resnet12")):
        cfg = experiment(model, "none", FaultConfig(), seed=11 + i)
        cfg.train.epochs = 1
        cfg.train.n_train = 64
        cfg.train.n_test = 32
        cells.append(ExperimentCell(model, cfg))
    t0 = time.perf_counter()
    results = run_experiments(cells, workers=workers)
    wall = time.perf_counter() - t0
    assert all(r.ok for r in results), [r.error for r in results]
    return {
        "workers": workers,
        "cells": len(cells),
        "wall_seconds": wall,
        "cell_seconds": [r.wall_seconds for r in results],
    }


def run_hotpath() -> dict:
    payload: dict = {
        "matrix_shape": list(MATRIX_SHAPE),
        "block": BLOCK,
        "scale": SCALE,
        "effective_matrix": {
            "fault_free": bench_effective_matrix(0.0),
            "faulty_2pct": bench_effective_matrix(DENSITY),
        },
        "eval_path": bench_eval_path(),
        "cache_hit": bench_cache_hit(),
        "telemetry": bench_telemetry_overhead(),
        "profiling": bench_profiling_overhead(),
        "cache_equivalence": bench_cache_equivalence(),
        "train_epoch": bench_train_epoch(),
        "runner": [bench_runner_fanout(workers=1)],
    }
    rows = []
    for name, rec in payload["effective_matrix"].items():
        rows.append([
            name, rec["fast_us"], rec["reference_us"], rec["speedup"],
        ])
    print()
    print(render_table(
        ["case", "fast (us)", "reference (us)", "speedup"],
        rows,
        title=f"effective_matrix on {MATRIX_SHAPE} / {BLOCK}x{BLOCK} blocks "
              f"(median of {REPS})",
        ndigits=1,
    ))
    ev = payload["eval_path"]
    print(f"eval pass (batch {ev['batch']}, cached clamp + no_grad): "
          f"{ev['fast_us']:.0f}us vs baseline {ev['baseline_us']:.0f}us "
          f"({ev['speedup']:.1f}x)")
    ch = payload["cache_hit"]
    print(f"forward_weight cache: hit {ch['hit_us']:.1f}us vs miss "
          f"{ch['miss_us']:.0f}us ({ch['speedup']:.0f}x)")
    tl = payload["telemetry"]
    print(f"telemetry on cache-hit MVM: {tl['telemetry_on_us']:.0f}us vs "
          f"{tl['telemetry_off_us']:.0f}us off "
          f"({100 * tl['overhead_fraction']:+.2f}%); live streaming "
          f"{tl['streaming_on_us']:.0f}us "
          f"({100 * tl['streaming_overhead_fraction']:+.2f}%)")
    pf = payload["profiling"]
    print(f"per-layer profiling spans (opt-in): forward "
          f"{pf['profile_on_us']:.0f}us vs {pf['profile_off_us']:.0f}us off "
          f"({100 * pf['overhead_fraction']:+.1f}%)")
    print("fig5 smoke cell, fast paths on vs off: "
          + ("bit-identical" if payload["cache_equivalence"]["identical"]
             else "MISMATCH"))
    te = payload["train_epoch"]
    line = (f"train epoch (resnet12, {SCALE} recipe): fused "
            f"{te['seconds']:.2f}s vs reference {te['reference_seconds']:.2f}s"
            f" (recorded baseline {te['baseline_recorded_s']:.2f}s, "
            + ("losses identical" if te["identical_loss"] else "LOSS MISMATCH")
            + ")")
    if "dp_seconds" in te:
        line += (f"; dp x{te['dp_workers']} {te['dp_seconds']:.2f}s "
                 f"({te['dp_speedup_vs_baseline']:.1f}x vs baseline)")
    print(line)
    print(f"runner fan-out ({payload['runner'][0]['cells']} cells, serial): "
          f"{payload['runner'][0]['wall_seconds']:.1f}s")
    save_results("hotpath", payload)
    return payload


def test_hotpath(benchmark):
    payload = benchmark.pedantic(run_hotpath, rounds=1, iterations=1)
    faulty = payload["effective_matrix"]["faulty_2pct"]
    # Acceptance: >= 3x over the dense reference at 2% density.
    assert faulty["speedup"] >= 3.0, faulty
    # The fault-free path is a cache-hit passthrough; it must not be
    # slower than the faulty path's reference implementation.
    ff = payload["effective_matrix"]["fault_free"]
    assert ff["fast_us"] < faulty["reference_us"]
    # Acceptance: cached clamp + no_grad evaluation >= 3x over the
    # recompute-everything baseline on the reference layer ...
    assert payload["eval_path"]["speedup"] >= 3.0, payload["eval_path"]
    # ... without changing a single bit of the training results.
    assert payload["cache_equivalence"]["identical"], payload["cache_equivalence"]
    # Telemetry neutrality: a sink attached to the engine must cost the
    # cache-hit MVM fast path < 3% — with live streaming enabled too
    # (the DeltaStreamer reads the sink from a background thread on a
    # coarse interval, so it must be invisible on the hot path).
    assert payload["telemetry"]["overhead_fraction"] < 0.03, payload["telemetry"]
    assert payload["telemetry"]["streaming_overhead_fraction"] < 0.03, \
        payload["telemetry"]
    # The fused hot loop is a pure optimisation: the reference loop must
    # see the identical per-epoch loss, and fusing must not be slower.
    te = payload["train_epoch"]
    assert te["identical_loss"], te
    assert te["seconds"] <= te["reference_seconds"] * 1.1, te
    # Training-throughput gate (multi-core only): the sharded
    # data-parallel epoch must beat the recorded 2.07 s seed baseline by
    # >= 3x at the full 4-rank recipe, scaled down proportionally when
    # fewer cores are available and with a 10% machine-variance
    # tolerance.  Single-core machines skip the gate — there is no
    # parallelism to measure.
    if "dp_speedup_vs_baseline" in te:
        target = 3.0 * min(1.0, te["dp_workers"] / 4.0)
        assert te["dp_speedup_vs_baseline"] >= 0.9 * target, te


if __name__ == "__main__":
    run_hotpath()
