"""Benchmark harness configuration.

Each figure bench runs exactly once per session (``benchmark.pedantic``
with one round): the interesting output is the regenerated figure data,
not a latency distribution.
"""

import sys
import pathlib

# Make the sibling `_common` module importable regardless of rootdir.
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
