"""Section IV.C overheads: BIST timing, remap NoC traffic, area, power.

Regenerates every overhead number the paper quotes:

========================  ===========  =============================
quantity                  paper value  bench
========================  ===========  =============================
BIST pass                 260 cycles   test_bist_timing
BIST timing overhead      0.13%        test_bist_timing
remap traffic (mean)      0.22%        test_remap_traffic_monte_carlo
remap traffic (worst)     0.36%        test_remap_traffic_monte_carlo
BIST area                 0.61%        test_area_overheads
AN-code area              6.3%         test_area_overheads
Remap-T-10% area          ~10%         test_area_overheads
remap power               < 0.5%       test_remap_power
========================  ===========  =============================
"""

import numpy as np

from repro.area.models import bist_area_overhead, policy_area_overhead
from repro.area.power import estimate_epoch_flit_hops, remap_power_fraction
from repro.bist.timing import BistTiming
from repro.core.controller import build_experiment
from repro.core.overheads import (
    OverheadReport,
    bist_overhead_fraction,
    epoch_traffic_model,
    monte_carlo_remap_overhead,
)
from repro.nn.tensor import Tensor
from repro.noc.packet import flits_for_bits
from repro.noc.topology import CMesh
from repro.telemetry import Telemetry
from repro.utils.config import ChipConfig, CrossbarConfig, FaultConfig
from repro.utils.rng import derive_rng
from repro.utils.tabulate import render_table

from _common import experiment, save_results

#: paper-scale workload for the overhead denominators: CIFAR-10-sized
#: epoch (50k samples, batch 128) on the 128x128-crossbar RCS.
PAPER_SAMPLES = 50_000
PAPER_BATCHES = 391


def _paper_scale_context():
    cfg = experiment("vgg11", "none",
                     FaultConfig(pre_enabled=False, post_enabled=False))
    ctx = build_experiment(cfg)
    ctx.model.eval()
    ctx.model(Tensor(ctx.dataset.x_train[:2]))  # record conv output sizes
    return ctx


def run_overheads() -> OverheadReport:
    ctx = _paper_scale_context()
    chip_cfg = ChipConfig()  # paper-scale 128x128 arrays for area/timing
    traffic = epoch_traffic_model(
        ctx.model, ctx.engine, samples=PAPER_SAMPLES, batches=PAPER_BATCHES
    )
    bist_frac = bist_overhead_fraction(traffic, chip_cfg)

    cmesh = CMesh(chip_cfg.mesh_rows, chip_cfg.mesh_cols,
                  chip_cfg.tiles_per_router)
    rng = derive_rng(7, "overheads-mc")
    remap_mean, remap_worst = monte_carlo_remap_overhead(
        cmesh, traffic, rng, rounds=50
    )

    epoch_hops = estimate_epoch_flit_hops(ctx.model, samples=PAPER_SAMPLES)
    transfer_flits = flits_for_bits(128 * 128 * 16)
    remap_hops = 8 * 2 * transfer_flits * 3  # 8 exchanges, both ways, ~3 hops
    power_frac = remap_power_fraction(remap_hops, epoch_hops)

    report = OverheadReport(
        bist_timing_fraction=bist_frac,
        remap_traffic_mean=remap_mean,
        remap_traffic_worst=remap_worst,
        bist_area_fraction=bist_area_overhead(chip_cfg),
        an_code_area_fraction=policy_area_overhead("an-code", chip_cfg),
        remap_t10_area_fraction=policy_area_overhead("remap-t", chip_cfg),
        remap_power_fraction=power_frac,
    )
    tel = Telemetry(echo=False)
    report.record(tel)
    print()
    print(render_table(
        ["overhead", "measured", "paper"],
        report.rows(),
        title="Section IV.C overhead summary",
    ))
    save_results("overheads", {
        "bist_timing": bist_frac,
        "remap_traffic_mean": remap_mean,
        "remap_traffic_worst": remap_worst,
        "bist_area": report.bist_area_fraction,
        "an_code_area": report.an_code_area_fraction,
        "remap_t10_area": report.remap_t10_area_fraction,
        "remap_power": power_frac,
        "bist_cycles": BistTiming(CrossbarConfig()).total_cycles,
        "telemetry_events": tel.snapshot()["events"],
    })
    return report


def test_bist_timing(benchmark):
    timing = benchmark.pedantic(
        lambda: BistTiming(CrossbarConfig()), rounds=1, iterations=1
    )
    assert timing.total_cycles == 260  # paper Section III.B.3


def test_overheads_summary(benchmark):
    report = benchmark.pedantic(run_overheads, rounds=1, iterations=1)
    # BIST timing overhead is well below a percent (paper: 0.13%).
    assert report.bist_timing_fraction < 0.01
    # Remap traffic is a small fraction of the epoch (paper: 0.22%/0.36%).
    assert report.remap_traffic_mean < 0.01
    assert report.remap_traffic_mean <= report.remap_traffic_worst
    # Area ordering: BIST << AN code < Remap-T-10% (paper: 0.61/6.3/10%).
    assert report.bist_area_fraction < 0.02
    assert report.bist_area_fraction < report.an_code_area_fraction
    assert report.an_code_area_fraction < report.remap_t10_area_fraction
    # Power: remap traffic costs < 0.5% of chip energy per epoch.
    assert report.remap_power_fraction < 0.005


def test_remap_traffic_scales_with_parallelism(benchmark):
    """Parallel non-overlapping remaps keep the worst case close to the
    mean — the property the paper attributes to the NoC (Section IV.C)."""

    def ratio() -> float:
        ctx = _paper_scale_context()
        traffic = epoch_traffic_model(
            ctx.model, ctx.engine, samples=PAPER_SAMPLES, batches=PAPER_BATCHES
        )
        cmesh = CMesh(4, 4, 4)
        rng = derive_rng(11, "mc2")
        mean, worst = monte_carlo_remap_overhead(cmesh, traffic, rng, rounds=50)
        return worst / mean

    value = benchmark.pedantic(ratio, rounds=1, iterations=1)
    assert value < 4.0
