"""Fig. 4 — BIST column output current vs. per-column stuck-cell count.

The paper sweeps the number of SA0/SA1 faults in one column of an
illustrative 4x4 crossbar (HSpice, with stuck-resistance variation bands)
and shows the output current is a reliable, monotone indicator of the
fault count.  This bench regenerates both series — min/mean/max current
over resistance-variation samples for each fault count — for the 4x4
array and confirms the same behaviour at 128x128.
"""

import numpy as np

from repro.bist.analog import column_currents_sa0_test, column_currents_sa1_test
from repro.faults.types import FaultMap, FaultType
from repro.utils.config import CrossbarConfig
from repro.utils.rng import derive_rng
from repro.utils.tabulate import render_table

from _common import save_results

VARIATION_SAMPLES = 64


def _series(rows: int, fault_type: FaultType) -> list[list]:
    # The paper's variation study samples SA0 in [0.8, 3] MOhm but SA1 in
    # the narrower [1.5, 2] kOhm band (Section IV.B); the narrower band is
    # what keeps successive SA1 fault counts distinguishable.
    cfg = CrossbarConfig(rows=rows, cols=rows, r_sa1_max=2.0e3)
    rng = derive_rng(42, f"fig4-{rows}-{fault_type.name}")
    table = []
    for k in range(0, rows + 1):
        fm = FaultMap(rows, rows)
        if k:
            fm.inject_cells(
                np.arange(k), np.zeros(k, dtype=int), fault_type
            )
        currents = []
        for _ in range(VARIATION_SAMPLES):
            if fault_type is FaultType.SA1:
                i = column_currents_sa1_test(fm, cfg, rng, noise_fraction=0.0)
            else:
                i = column_currents_sa0_test(fm, cfg, rng, noise_fraction=0.0)
            currents.append(i[0] * 1e6)  # microamps
        table.append([k, min(currents), float(np.mean(currents)), max(currents)])
    return table


def run_fig4() -> dict:
    results = {}
    for label, fault_type in (("sa0", FaultType.SA0), ("sa1", FaultType.SA1)):
        table = _series(4, fault_type)
        results[label] = table
        print()
        print(
            render_table(
                ["faults/col", "I_min (uA)", "I_mean (uA)", "I_max (uA)"],
                table,
                title=f"Fig. 4({'a' if label == 'sa0' else 'b'}): 4x4 crossbar, "
                f"{label.upper()} test current vs fault count",
                ndigits=3,
            )
        )
    # Monotonicity must also hold for the full-size array despite variation.
    for label, fault_type in (("sa0_128", FaultType.SA0), ("sa1_128", FaultType.SA1)):
        table = _series(128, fault_type)[:: 16]
        results[label] = table
    save_results("fig4", results)
    return results


def test_fig4_bist_current(benchmark):
    results = benchmark.pedantic(run_fig4, rounds=1, iterations=1)
    sa1_means = [row[2] for row in results["sa1"]]
    sa0_means = [row[2] for row in results["sa0"]]
    # Paper's claim: monotone relation in both polarities, variation bands
    # for successive counts do not overlap.
    assert all(b > a for a, b in zip(sa1_means, sa1_means[1:]))
    assert all(b < a for a, b in zip(sa0_means, sa0_means[1:]))
    # Variation bands of successive counts stay separable over the 4x4
    # figure's range (the calibration property Fig. 4 demonstrates).
    sa1_bands = [(row[1], row[3]) for row in results["sa1"][:4]]
    assert all(hi < lo2 for (_, hi), (lo2, _) in zip(sa1_bands, sa1_bands[1:]))
