"""Shared configuration for the figure-reproduction benchmarks.

Every bench regenerates one figure/table of the paper and prints the same
rows/series the paper reports, alongside the paper's qualitative
expectation.  Scale is controlled by ``REPRO_BENCH_SCALE``:

* ``quick``   — two models, short training (smoke-test the harness);
* ``default`` — all six CNNs at the calibrated laptop-scale recipe.

Absolute accuracies are not comparable to the paper (our substrate is a
width-scaled NumPy simulator on synthetic data, 8 epochs instead of 50);
the reproduced quantity is the *shape*: who wins, roughly by how much,
and in which direction each knob moves the result.  See EXPERIMENTS.md.

Runtime knobs (see "Runtime & parallelism" and "Resilience & resume" in
EXPERIMENTS.md):

* ``REPRO_BENCH_WORKERS`` — experiment cells per figure fan out over this
  many worker processes (``auto`` = CPU count; default serial).  Cells
  are seed-deterministic, so the numbers are identical at any width.
* ``REPRO_BENCH_DTYPE`` — ``float32`` (default, fast) or ``float64``.
* ``REPRO_BENCH_RESUME`` — when truthy, every figure sweep checkpoints
  each finished cell to ``results/checkpoints/<figure>.jsonl`` and a
  re-run skips the cells already recorded there (bit-identical restore).
* ``REPRO_BENCH_TIMEOUT`` / ``REPRO_BENCH_RETRIES`` — per-cell wall-clock
  timeout (seconds) and the retry budget for crashed/timed-out cells
  (resolved inside :func:`repro.runner.run_experiments`).
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Any, Iterable

from repro.analog import AnalogConfig
from repro.runner import CellResult, ExperimentCell, results_by_key, run_experiments
from repro.utils.config import (
    ChipConfig,
    CrossbarConfig,
    ExperimentConfig,
    FaultConfig,
    TrainConfig,
)

SCALE = os.environ.get("REPRO_BENCH_SCALE", "default")
DTYPE = os.environ.get("REPRO_BENCH_DTYPE", "float32")
RESUME = os.environ.get("REPRO_BENCH_RESUME", "").strip().lower() in (
    "1", "true", "yes", "on"
)

#: the six CNNs of the paper (Fig. 5/6/8).
ALL_MODELS = ["vgg11", "vgg16", "vgg19", "resnet12", "resnet18", "squeezenet"]
MODELS = ["vgg11", "resnet12"] if SCALE == "quick" else ALL_MODELS
# Optional comma-separated model-subset override (keeps default-scale
# training while trimming the per-figure model set — useful on very slow
# machines; the deep VGGs need longer training than the default recipe
# to converge and carry little signal at this scale).
_OVERRIDE = os.environ.get("REPRO_BENCH_MODELS")
if _OVERRIDE:
    MODELS = [m.strip() for m in _OVERRIDE.split(",") if m.strip()]

#: scaled crossbars keep weight/cell occupancy realistic for the
#: width-scaled models (see DESIGN.md section 5).
CROSSBAR = CrossbarConfig(rows=32, cols=32)

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"
CHECKPOINT_DIR = RESULTS_DIR / "checkpoints"


def train_config(model: str, dataset: str = "synth-cifar10") -> TrainConfig:
    if SCALE == "quick":
        return TrainConfig(
            model=model, dataset=dataset, epochs=4, batch_size=32,
            n_train=256, n_test=128, width_mult=0.125, dtype=DTYPE,
        )
    return TrainConfig(
        model=model, dataset=dataset, epochs=8, batch_size=32,
        n_train=512, n_test=192, width_mult=0.125, dtype=DTYPE,
    )


def chip_config() -> ChipConfig:
    return ChipConfig(crossbar=CROSSBAR)


def fig6_fault_config() -> FaultConfig:
    """Pre + post faults for the Fig. 6 / Fig. 8 comparison.

    The paper injects 0.5% new faults on 1% of crossbars per epoch for 50
    epochs; our runs last 8 epochs, so the per-epoch dose is scaled
    (m=1%, n=2% — the paper's own Fig. 7 worst-case corner) to keep the
    *accumulated* post-deployment dose in the paper's regime.
    """
    return FaultConfig(post_m=0.01, post_n=0.02)


def experiment(
    model: str,
    policy: str,
    faults: FaultConfig,
    dataset: str = "synth-cifar10",
    policy_param: float = 0.0,
    seed: int = 1,
    analog: AnalogConfig | None = None,
) -> ExperimentConfig:
    return ExperimentConfig(
        train=train_config(model, dataset),
        chip=chip_config(),
        faults=faults,
        policy=policy,
        policy_param=policy_param,
        remap_threshold=0.001,
        seed=seed,
        analog=analog,
    )


def run_cells(
    cells: Iterable[ExperimentCell],
    workers: int | None = None,
    *,
    name: str | None = None,
    checkpoint: str | pathlib.Path | None = None,
    timeout: float | None = None,
    retry: int | None = None,
) -> dict[Any, CellResult]:
    """Fan the cells across the runner and index the results by key.

    Prints one progress line per finished cell and the full traceback of
    every failed cell; failed cells surface as NaN accuracies downstream
    (via :attr:`CellResult.final_accuracy`) rather than aborting the
    whole figure.

    ``name`` identifies the figure's checkpoint file: when
    ``REPRO_BENCH_RESUME`` is set (or an explicit ``checkpoint`` path is
    given), finished cells are appended to
    ``results/checkpoints/<name>.jsonl`` as they complete and an
    interrupted bench re-run restores them instead of re-training.
    Timeouts and crash retries default to the ``REPRO_BENCH_TIMEOUT`` /
    ``REPRO_BENCH_RETRIES`` environment knobs.
    """
    cell_list = list(cells)
    total = len(cell_list)
    done = 0
    if checkpoint is None and RESUME and name:
        checkpoint = CHECKPOINT_DIR / f"{name}.jsonl"

    def _progress(res: CellResult) -> None:
        nonlocal done
        done += 1
        status = "ok" if res.ok else "FAILED"
        if res.restored:
            status += " (cached)"
        elif res.attempts > 1:
            status += f" (retried x{res.attempts - 1})"
        print(
            f"  [{done:>{len(str(total))}}/{total}] {res.key}: {status} "
            f"({res.wall_seconds:.1f}s, pid {res.worker_pid})"
        )

    results = run_experiments(
        cell_list,
        workers=workers,
        on_result=_progress,
        timeout=timeout,
        retry=retry,
        checkpoint=checkpoint,
    )
    failures = [r for r in results if not r.ok]
    for res in failures:
        print(f"\ncell {res.key!r} failed:\n{res.error}")
    if failures:
        print(f"WARNING: {len(failures)}/{total} cells failed (NaN in tables)")
    return results_by_key(results)


def save_results(name: str, payload: dict[str, Any]) -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, default=float)
    return path
