"""Fig. 6 — accuracy of the fault-tolerance methods under pre+post faults.

For every CNN the paper compares: fault-free training (ideal), no
protection, the AN-code ECC, static fault-aware mapping, Remap-WS (top-5%
weight significance), Remap-T-n% (top-n% gradients onto spares) and the
proposed Remap-D.  Expected shape: Remap-D and Remap-T-10% land near
ideal; AN code, static mapping and Remap-WS leave large losses; Remap-D
needs no spare hardware.
"""

from repro.runner import ExperimentCell
from repro.utils.tabulate import render_table

from _common import (
    MODELS,
    SCALE,
    experiment,
    fig6_fault_config,
    run_cells,
    save_results,
)

POLICIES: list[tuple[str, str, float]] = [
    ("ideal", "ideal", 0.0),
    ("none", "none", 0.0),
    ("an-code", "an-code", 0.0),
    ("static", "static", 0.0),
    ("remap-ws", "remap-ws", 0.05),
    ("remap-t-5%", "remap-t", 0.05),
    ("remap-t-10%", "remap-t", 0.10),
    ("remap-d", "remap-d", 0.0),
]


def run_fig6() -> dict:
    faults = fig6_fault_config()
    by_key = run_cells(
        (
            ExperimentCell(
                (model, label),
                experiment(model, policy, faults, policy_param=param),
                tags={"policy": policy},
            )
            for model in MODELS
            for label, policy, param in POLICIES
        ),
        name="fig6",
    )
    results: dict[str, dict[str, float]] = {}
    remap_counts: dict[str, int] = {}
    for model in MODELS:
        results[model] = {}
        for label, policy, _ in POLICIES:
            res = by_key[(model, label)]
            results[model][label] = res.final_accuracy
            if policy == "remap-d" and res.ok:
                remap_counts[model] = res.result.num_remaps
    labels = [label for label, _, _ in POLICIES]
    rows = [[model] + [results[model][l] for l in labels] for model in MODELS]
    means = ["MEAN"] + [
        sum(results[m][l] for m in MODELS) / len(MODELS) for l in labels
    ]
    print()
    print(render_table(
        ["model"] + labels, rows + [means],
        title="Fig. 6: trained accuracy under pre+post faults "
              "(paper: remap-d ~ remap-t-10% ~ ideal; an-code/static/"
              "remap-ws lose heavily)",
        ndigits=3,
    ))
    print(f"remap-d task remaps per run: {remap_counts}")
    save_results("fig6", {"accuracy": results, "remaps": remap_counts})
    return results


def test_fig6_methods(benchmark):
    results = benchmark.pedantic(run_fig6, rounds=1, iterations=1)
    mean = lambda label: sum(r[label] for r in results.values()) / len(results)  # noqa: E731
    # Headline orderings (averaged over the CNNs):
    assert mean("ideal") >= mean("remap-d") - 0.02
    assert mean("remap-d") > mean("none")           # Remap-D recovers accuracy
    if SCALE != "quick":
        assert mean("ideal") > mean("an-code") - 0.02  # ECC is not near-ideal
