"""Endurance-driven chip ageing: how training wears the crossbars out.

Instead of the paper's fixed worst-case "(m, n) new faults per epoch",
this example drives post-deployment fault injection from the lognormal
write-endurance model: every epoch records the weight-update writes of
the mapped crossbars, and each crossbar's incremental failure probability
follows from its accumulated write count.  It then shows the resulting
non-uniform density growth — written (mapped) crossbars age, idle ones
do not — which is exactly the distribution Remap-D exploits.

Run:  python examples/endurance_lifetime.py
"""

import numpy as np

from repro.core.controller import build_experiment
from repro.faults.endurance import EnduranceModel
from repro.utils.config import (
    ChipConfig,
    CrossbarConfig,
    ExperimentConfig,
    FaultConfig,
    TrainConfig,
)
from repro.utils.tabulate import render_table


def main() -> None:
    config = ExperimentConfig(
        train=TrainConfig(
            model="vgg11", epochs=6, batch_size=32,
            n_train=256, n_test=128, width_mult=0.125,
        ),
        chip=ChipConfig(crossbar=CrossbarConfig(rows=32, cols=32)),
        faults=FaultConfig(pre_enabled=False, post_enabled=False),
        policy="none",
        seed=5,
    )
    ctx = build_experiment(config)
    # An aggressive endurance spec so ageing is visible within the demo
    # (real ReRAM endures 1e6-1e12 cycles; training epochs would be scaled
    # accordingly).
    model = EnduranceModel(mean_cycles=500.0, sigma=0.6)

    mapped = set()
    for m in ctx.engine.all_mappings():
        for _, _, pid in m.iter_blocks():
            mapped.update(ctx.chip.pair(pid).crossbar_ids())
    mapped_arr = np.array(sorted(mapped))
    idle_arr = np.array(
        [i for i in range(ctx.chip.num_crossbars) if i not in mapped]
    )

    rows = []

    def on_epoch_end(epoch: int, trainer) -> None:
        before = ctx.chip.wear.writes.copy()
        ctx.chip.record_update_writes(trainer.num_batches())
        after = ctx.chip.wear.writes
        ctx.injector.inject_post_epoch_endurance(
            ctx.chip.fault_maps, before, after, model, epoch
        )
        ctx.chip.bump_fault_version()
        densities = ctx.chip.true_crossbar_densities()
        rows.append([
            epoch,
            int(after[mapped_arr].max()),
            f"{densities[mapped_arr].mean():.4%}",
            f"{densities[idle_arr].mean():.4%}" if idle_arr.size else "n/a",
            f"{densities.max():.4%}",
            trainer.evaluate(),
        ])

    ctx.trainer.fit(on_epoch_end=on_epoch_end)

    print()
    print(render_table(
        ["epoch", "max writes", "mapped density", "idle density",
         "worst crossbar", "test acc"],
        rows,
        title="Endurance-driven ageing (writes wear out only the mapped, "
              "frequently-written crossbars)",
        ndigits=3,
    ))
    densities = ctx.chip.true_crossbar_densities()
    print(f"\nfinal: mapped mean {densities[mapped_arr].mean():.4%} vs "
          f"idle mean {densities[idle_arr].mean() if idle_arr.size else 0:.4%}"
          " -> the non-uniform distribution Remap-D exploits")


if __name__ == "__main__":
    main()
