"""Which training phase tolerates faults? (the Fig. 5 experiment)

Injects a 2% stuck-at-fault density into the crossbars of *one* training
phase at a time — the forward copies (storing W^T for inference MVMs) or
the backward copies (storing W for error back-propagation and computing
the weight gradients) — and trains VGG-11 from scratch on each.

Expected outcome (the paper's central observation): backward-phase faults
corrupt gradients whose errors accumulate with every weight update and
wreck training, while forward-phase faults act like static weight noise
the optimiser trains around.

Run:  python examples/phase_fault_tolerance.py
"""

from repro import ExperimentConfig, FaultConfig, TrainConfig, run_experiment
from repro.utils.config import ChipConfig, CrossbarConfig
from repro.utils.tabulate import render_series, render_table


def main() -> None:
    train = TrainConfig(
        model="vgg11", epochs=8, batch_size=32,
        n_train=512, n_test=192, width_mult=0.125,
    )
    chip = ChipConfig(crossbar=CrossbarConfig(rows=32, cols=32))

    curves: dict[str, list[float]] = {}
    finals: list[list] = []
    for label, faults, policy in [
        ("fault-free", FaultConfig(pre_enabled=False, post_enabled=False),
         "ideal"),
        ("forward 2%", FaultConfig(pre_enabled=False, post_enabled=False,
                                   phase_target="forward",
                                   phase_density=0.02), "none"),
        ("backward 2%", FaultConfig(pre_enabled=False, post_enabled=False,
                                    phase_target="backward",
                                    phase_density=0.02), "none"),
    ]:
        config = ExperimentConfig(
            train=train, chip=chip, faults=faults, policy=policy, seed=1
        )
        result = run_experiment(config)
        curves[label] = result.train_result.accuracy_curve()
        finals.append([label, result.final_accuracy])
        print(f"done: {label:<12} final={result.final_accuracy:.3f}")

    print()
    for label, curve in curves.items():
        print(render_series(
            label, list(range(len(curve))), curve, "epoch", "test acc",
        ))
        print()
    print(render_table(
        ["fault placement", "final accuracy"], finals,
        title="Phase fault tolerance (VGG-11, 2% density)", ndigits=3,
    ))


if __name__ == "__main__":
    main()
