"""Walk the BIST finite-state machine through a faulty crossbar.

Creates a 128x128 crossbar, injects a known mix of SA0/SA1 faults,
single-steps the 7-state BIST controller of Fig. 2 while reporting the
state timeline, and compares the density estimate extracted from the
(noisy, variation-afflicted) column currents against the ground truth.

Run:  python examples/bist_walkthrough.py
"""

import numpy as np

from repro.bist.density import run_bist
from repro.bist.fsm import BistController, BistState
from repro.bist.timing import BistTiming
from repro.faults.types import FaultType
from repro.reram.crossbar import Crossbar
from repro.utils.config import CrossbarConfig
from repro.utils.rng import derive_rng
from repro.utils.tabulate import render_table


def main() -> None:
    cfg = CrossbarConfig()  # the paper's 128x128 array
    rng = derive_rng(2024, "bist-demo")
    xbar = Crossbar(0, cfg)

    # Inject 150 SA0 + 20 SA1 faults at random cells.
    cells = rng.choice(cfg.cells, size=170, replace=False)
    xbar.fault_map.inject(cells[:150], FaultType.SA0)
    xbar.fault_map.inject(cells[150:], FaultType.SA1)
    print(f"injected: 150 SA0 + 20 SA1 -> true density "
          f"{xbar.fault_map.density:.4%}")

    # Single-step the FSM and record state transitions.
    controller = BistController(xbar, rng)
    controller.start()
    timeline: list[tuple[int, str]] = []
    last_state: BistState | None = None
    while not controller.finish_flag:
        if controller.state is not last_state:
            timeline.append((controller.cycle, controller.state.name))
            last_state = controller.state
        controller.step()
    timeline.append((controller.cycle, "S0_IDLE (finish)"))

    print()
    print(render_table(
        ["entered at cycle", "state"],
        timeline,
        title="BIST controller timeline (Fig. 2(b) states)",
    ))
    timing = BistTiming(cfg)
    print(f"\ntotal: {controller.cycle} ReRAM cycles "
          f"(analytical: {timing.total_cycles}; "
          f"{timing.pass_time_ns / 1000:.1f} us at 10 MHz)")

    # Density estimation across repeated measurements.
    rows = []
    for trial in range(5):
        res = run_bist(xbar.fault_map, cfg, rng)
        rows.append([trial, res.sa0_count, res.sa1_count,
                     f"{res.density:.4%}"])
    print()
    print(render_table(
        ["trial", "est. SA0", "est. SA1", "est. density"],
        rows,
        title="Density estimates under stuck-R variation + sensing noise "
              "(truth: 150 / 20 / "
              f"{xbar.fault_map.density:.4%})",
    ))


if __name__ == "__main__":
    main()
