"""Sweep all mitigation methods on one CNN and chart the outcome.

Exercises the analysis API (`repro.core.analysis`): builds the full
Fig. 6 policy set for a single model, runs it as a labelled sweep,
prints the accuracy-loss table relative to the fault-free reference and
an ASCII bar chart of the final accuracies.

Run:  python examples/method_sweep.py
"""

from repro.core.analysis import accuracy_loss_table, run_sweep
from repro.utils.charts import render_bars
from repro.utils.config import (
    ChipConfig,
    CrossbarConfig,
    ExperimentConfig,
    FaultConfig,
    TrainConfig,
)
from repro.utils.tabulate import render_table

MODEL = "vgg11"


def _config(policy: str, param: float = 0.0) -> ExperimentConfig:
    faults = (
        FaultConfig(pre_enabled=False, post_enabled=False)
        if policy == "ideal"
        else FaultConfig(post_m=0.01, post_n=0.02)
    )
    return ExperimentConfig(
        train=TrainConfig(
            model=MODEL, epochs=8, batch_size=32,
            n_train=512, n_test=192, width_mult=0.125,
        ),
        chip=ChipConfig(crossbar=CrossbarConfig(rows=32, cols=32)),
        faults=faults,
        policy=policy,
        policy_param=param,
        remap_threshold=0.001,
        seed=1,
    )


def main() -> None:
    sweep = run_sweep(
        [
            ("ideal", _config("ideal")),
            ("none", _config("none")),
            ("an-code", _config("an-code")),
            ("static", _config("static")),
            ("remap-ws", _config("remap-ws", 0.05)),
            ("remap-t-10%", _config("remap-t", 0.10)),
            ("remap-d", _config("remap-d")),
        ],
        progress=True,
    )
    print()
    print(render_table(
        ["method", "final accuracy", "loss vs ideal"],
        accuracy_loss_table(sweep, "ideal"),
        title=f"mitigation methods on {MODEL} (pre+post faults)",
        ndigits=3,
    ))
    print()
    labels = sweep.labels()
    print(render_bars(
        labels, [sweep.accuracy(l) for l in labels],
        title="final accuracy", vmax=1.0,
    ))


if __name__ == "__main__":
    main()
