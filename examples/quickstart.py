"""Quickstart: train a CNN on a faulty ReRAM chip, with and without Remap-D.

Builds a ResNet-12, maps its forward/backward crossbar copies onto a
simulated RCS with non-uniform manufacturing defects plus per-epoch
endurance faults, and trains it from scratch three times:

* on ideal (fault-free) hardware,
* on the faulty chip with no protection,
* on the faulty chip with Remap-D's BIST-guided dynamic task remapping.

Run:  python examples/quickstart.py
"""

from repro import ExperimentConfig, FaultConfig, TrainConfig, run_experiment
from repro.utils.config import ChipConfig, CrossbarConfig
from repro.utils.tabulate import render_table


def main() -> None:
    train = TrainConfig(
        model="resnet12",
        dataset="synth-cifar10",
        epochs=8,
        batch_size=32,
        n_train=512,
        n_test=192,
        width_mult=0.125,  # laptop-scale models; 1.0 = paper scale
    )
    chip = ChipConfig(crossbar=CrossbarConfig(rows=32, cols=32))
    faults = FaultConfig(post_m=0.01, post_n=0.02)

    rows = []
    for label, policy, fault_cfg in [
        ("ideal hardware", "ideal", FaultConfig(pre_enabled=False,
                                                post_enabled=False)),
        ("faulty, no protection", "none", faults),
        ("faulty, Remap-D", "remap-d", faults),
    ]:
        config = ExperimentConfig(
            train=train, chip=chip, faults=fault_cfg,
            policy=policy, remap_threshold=0.001, seed=1,
        )
        result = run_experiment(config)
        rows.append([
            label,
            result.final_accuracy,
            result.num_remaps,
            round(result.wall_seconds, 1),
        ])
        print(f"finished: {label:<24} acc={result.final_accuracy:.3f}")

    print()
    print(render_table(
        ["configuration", "final accuracy", "task remaps", "wall (s)"],
        rows,
        title="Remap-D quickstart (ResNet-12, synthetic CIFAR-10)",
        ndigits=3,
    ))


if __name__ == "__main__":
    main()
