"""Watch the Fig. 3 remapping protocol run on the cycle-accurate NoC.

Builds the paper's 4x4 c-mesh, designates a few faulty sender tiles,
constructs the three protocol phases — XY-tree broadcast of the remap
requests, unicast responses from candidate receivers, and the
bidirectional weight exchanges — and simulates each phase flit by flit,
reporting per-phase latency and the epoch-level time overhead.

Run:  python examples/noc_remap_protocol_demo.py
"""

from repro.core.overheads import remap_noc_overhead
from repro.noc.multicast import build_xy_tree, tree_links
from repro.noc.simulator import NoCSimulator
from repro.noc.topology import CMesh
from repro.noc.traffic import TrainingTrafficModel, remap_phase_packets
from repro.utils.tabulate import render_table


def main() -> None:
    cmesh = CMesh(4, 4, concentration=4)  # 64 tiles on 16 routers
    senders = [3, 27]                     # two faulty tiles (cf. S1, S2)
    responders = {3: [10, 24, 40, 51], 27: [12, 30, 44]}
    matches = {
        s: min(rs, key=lambda t: cmesh.tile_distance(s, t))
        for s, rs in responders.items()
    }
    print("sender tiles:   ", senders)
    print("responder tiles:", responders)
    print("proximity picks:", matches)

    tree = build_xy_tree(cmesh, cmesh.router_of(senders[0]))
    print(f"\nXY broadcast tree from router {cmesh.router_of(senders[0])}: "
          f"{len(tree_links(tree))} links (each link used exactly once)")

    weight_bits = 128 * 128 * 16  # one crossbar pair's weights at 16 bits
    requests, responses, transfers = remap_phase_packets(
        cmesh, senders, responders, matches, weight_bits
    )
    rows = []
    for label, packets in [
        ("1. broadcast requests", requests),
        ("2. receiver responses", responses),
        ("3. weight exchanges", transfers),
    ]:
        sim = NoCSimulator(cmesh)
        for p in packets:
            sim.schedule(p)
        stats = sim.run()
        rows.append([
            label, len(packets), stats.cycles, round(stats.mean_latency(), 1),
            stats.flit_hops,
        ])
    print()
    print(render_table(
        ["protocol phase", "packets", "phase cycles", "mean latency",
         "flit-hops"],
        rows,
        title="Remap protocol on the 4x4 c-mesh (cycle-accurate)",
    ))

    traffic = TrainingTrafficModel(
        samples=50_000, batches=391, mvms_per_sample=3000.0
    )
    overhead, phases = remap_noc_overhead(
        senders, responders, matches, cmesh, traffic
    )
    print(f"\nepoch compute: {traffic.epoch_cycles:,.0f} ReRAM cycles; "
          f"remap phase adds {100 * overhead:.4f}% "
          f"(paper reports 0.22% mean / 0.36% worst)")


if __name__ == "__main__":
    main()
